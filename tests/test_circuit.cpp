#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/executor.h"
#include "common/rng.h"
#include "exec/density_matrix_backend.h"
#include "exec/state_vector_backend.h"
#include "test_support.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/metrics.h"

namespace qs {
namespace {

Circuit bell_circuit(int d) {
  Circuit c(QuditSpace::uniform(2, d));
  c.add("F", fourier(d), {0});
  c.add("CSUM", csum(d, d), {0, 1});
  return c;
}

using test_support::final_state;

TEST(Circuit, AddValidatesDimensions) {
  Circuit c(QuditSpace({3, 3}));
  EXPECT_THROW(c.add("X", weyl_x(2), {0}), std::invalid_argument);
  EXPECT_THROW(c.add("X", weyl_x(3), {5}), std::invalid_argument);
  EXPECT_THROW(c.add("XX", csum(3, 3), {0, 0}), std::invalid_argument);
  c.add("X", weyl_x(3), {1});
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, RunProducesBellState) {
  const Circuit c = bell_circuit(3);
  const StateVector psi = final_state(c);
  // (|00> + |11> + |22>)/sqrt(3).
  for (int k = 0; k < 3; ++k) {
    const std::size_t idx = c.space().index_of({k, k});
    EXPECT_NEAR(std::abs(psi.amplitude(idx)), 1.0 / std::sqrt(3.0), 1e-12);
  }
}

TEST(Circuit, InverseUndoesCircuit) {
  Rng rng(41);
  Circuit c(QuditSpace({3, 4}));
  c.add("U0", random_unitary(3, rng), {0});
  c.add("U01", random_unitary(12, rng), {0, 1});
  c.add_diagonal("P", {1.0, kI, -1.0, -kI}, {1});
  StateVector psi(c.space(),
                  random_state(static_cast<int>(c.space().dimension()), rng));
  const StateVector original = psi;
  StateVectorBackend::apply(c, psi);
  StateVectorBackend::apply(c.inverse(), psi);
  EXPECT_GT(state_fidelity(psi.amplitudes(), original.amplitudes()),
            1.0 - 1e-10);
}

TEST(Circuit, AppendConcatenates) {
  Circuit a = bell_circuit(3);
  const Circuit b = bell_circuit(3);
  a.append(b.inverse());
  const StateVector psi = final_state(a);
  EXPECT_NEAR(std::abs(psi.amplitude(0)), 1.0, 1e-10);
}

TEST(Circuit, AppendRejectsSpaceMismatch) {
  Circuit a = bell_circuit(3);
  const Circuit b = bell_circuit(2);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Circuit, DepthLayering) {
  Circuit c(QuditSpace::uniform(4, 2));
  c.add("X", weyl_x(2), {0});
  c.add("X", weyl_x(2), {1});  // parallel with previous
  c.add("CSUM", csum(2, 2), {0, 1});
  c.add("X", weyl_x(2), {3});  // parallel with CSUM
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, StatsCountsByArity) {
  Circuit c = bell_circuit(3);
  c.add("F", fourier(3), {1});
  const GateStats st = c.stats();
  EXPECT_EQ(st.total, 3u);
  EXPECT_EQ(st.single_site, 2u);
  EXPECT_EQ(st.two_site, 1u);
  EXPECT_EQ(st.by_name.at("F"), 2u);
}

TEST(Circuit, InversePreservesNoiseMultiplicity) {
  Circuit c(QuditSpace({2, 2}));
  c.add("U", csum(2, 2), {0, 1});
  c.set_last_noise_multiplicity(7);
  const Circuit inv = c.inverse();
  EXPECT_EQ(inv.operations()[0].noise_multiplicity, 7);
}

TEST(Circuit, DurationsAccumulate) {
  Circuit c(QuditSpace({2}));
  c.add("X", weyl_x(2), {0}, 1e-6);
  c.add("X", weyl_x(2), {0}, 2e-6);
  EXPECT_NEAR(c.total_duration(), 3e-6, 1e-18);
}

TEST(Circuit, DensityMatrixExecutionMatchesPure) {
  const Circuit c = bell_circuit(3);
  DensityMatrix rho(c.space());
  DensityMatrixBackend::apply(c, rho);
  const StateVector psi = final_state(c);
  EXPECT_NEAR(density_pure_fidelity(rho.matrix(), psi.amplitudes()), 1.0,
              1e-10);
}

TEST(Circuit, CircuitUnitaryMatchesComposition) {
  Rng rng(42);
  Circuit c(QuditSpace({2, 3}));
  const Matrix u0 = random_unitary(2, rng);
  const Matrix u1 = random_unitary(3, rng);
  c.add("U0", u0, {0});
  c.add("U1", u1, {1});
  const Matrix u = circuit_unitary(c);
  const Matrix expect = two_site(u0, u1);
  EXPECT_LT(max_abs_diff(u, expect), 1e-10);
}

TEST(Circuit, CircuitUnitaryGuardsLargeSpaces) {
  const Circuit c = bell_circuit(3);
  EXPECT_THROW(circuit_unitary(c, 4), std::invalid_argument);
}

TEST(Circuit, ToStringListsGates) {
  const Circuit c = bell_circuit(3);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("CSUM"), std::string::npos);
  EXPECT_NE(s.find("depth"), std::string::npos);
}

// ---------------------------------------------------------------------
// Parametric circuits: symbolic slots, binding, structural digests.
// ---------------------------------------------------------------------

/// Qutrit phase family diag(1, e^{i a}, e^{2 i a}).
std::shared_ptr<const ParamGenerator> phase_generator(std::uint64_t tag) {
  return make_diagonal_generator(tag, [](double angle) {
    return std::vector<cplx>{cplx{1.0, 0.0}, std::exp(cplx{0.0, angle}),
                             std::exp(cplx{0.0, 2.0 * angle})};
  });
}

Circuit parametric_pair() {
  Circuit c(QuditSpace({3, 3}));
  c.add("F", fourier(3), {0});
  c.add_parametric("RZ", phase_generator(0xa1), ParamExpr{0, 2.0, 0.5}, {1});
  return c;
}

TEST(ParametricCircuit, BindEvaluatesAffineSlotBitwise) {
  const Circuit c = parametric_pair();
  EXPECT_TRUE(c.parametric());
  EXPECT_EQ(c.num_parameters(), 1u);
  EXPECT_TRUE(c.parameter_values().empty());  // symbolic until bound

  const Circuit bound = c.bind({0.3});
  EXPECT_EQ(bound.parameter_values(), std::vector<double>{0.3});
  // The bound payload is the generator at scale*p + offset, computed by
  // the one fused expression in ParamExpr::evaluate -- bitwise.
  const double angle = 2.0 * 0.3 + 0.5;
  const Operation& op = bound.operations()[1];
  EXPECT_TRUE(op.parametric());  // metadata survives binding
  EXPECT_EQ(op.diag[1], std::exp(cplx{0.0, angle}));
  EXPECT_EQ(op.diag[2], std::exp(cplx{0.0, 2.0 * angle}));
  EXPECT_THROW(c.bind({0.1, 0.2}), std::invalid_argument);
}

TEST(ParametricCircuit, StructuralFingerprintIgnoresBindings) {
  const Circuit c = parametric_pair();
  const Circuit b1 = c.bind({0.3});
  const Circuit b2 = c.bind({0.9});
  // Value digests separate bindings; the structural digest unifies them
  // with each other and with the symbolic circuit (the cache-key
  // contract of the transpile and plan caches).
  EXPECT_NE(fingerprint(b1), fingerprint(b2));
  EXPECT_EQ(structural_fingerprint(b1), structural_fingerprint(b2));
  EXPECT_EQ(structural_fingerprint(b1), structural_fingerprint(c));
  // A different generator family (tag) is a different structure.
  Circuit other(QuditSpace({3, 3}));
  other.add("F", fourier(3), {0});
  other.add_parametric("RZ", phase_generator(0xa2), ParamExpr{0, 2.0, 0.5},
                       {1});
  EXPECT_NE(structural_fingerprint(other), structural_fingerprint(c));
  // A different slot (scale/offset) is a different structure too.
  Circuit scaled(QuditSpace({3, 3}));
  scaled.add("F", fourier(3), {0});
  scaled.add_parametric("RZ", phase_generator(0xa1), ParamExpr{0, 1.0, 0.5},
                        {1});
  EXPECT_NE(structural_fingerprint(scaled), structural_fingerprint(c));
  // Non-parametric circuits: both digests coincide.
  const Circuit plain = bell_circuit(3);
  EXPECT_EQ(structural_fingerprint(plain), fingerprint(plain));
}

TEST(ParametricCircuit, InverseRequiresABinding) {
  const Circuit c = parametric_pair();
  EXPECT_THROW(c.inverse(), std::invalid_argument);
  // Bound circuits invert through their materialized payloads.
  const Circuit bound = c.bind({0.7});
  Circuit round_trip = bound;
  round_trip.append(bound.inverse());
  const StateVector psi = final_state(round_trip);
  EXPECT_NEAR(std::abs(psi.amplitude(0)), 1.0, 1e-10);
}

}  // namespace
}  // namespace qs
