#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/executor.h"
#include "common/rng.h"
#include "exec/exec.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "hardware/processor.h"
#include "noise/noise_model.h"
#include "noise/noisy_executor.h"

namespace qs {
namespace {

/// Two-qutrit "Bell" circuit: F on site 0, then CSUM -- a maximally
/// entangled pair with populations 1/3 on |00>, |11>, |22>.
Circuit bell_circuit() {
  Circuit c(QuditSpace::uniform(2, 3));
  c.add("F", fourier(3), {0});
  c.add("CSUM", csum(3, 3), {0, 1});
  return c;
}

NoiseModel lossy_noise() {
  NoiseParams p;
  p.loss_per_gate = 0.05;
  p.depol_2q = 0.02;
  return NoiseModel(p);
}

// ---------------------------------------------------------------------
// Backend agreement.
// ---------------------------------------------------------------------

TEST(Backends, AgreeOnNoiselessBellCircuit) {
  const Circuit c = bell_circuit();
  const StateVectorBackend sv;
  const DensityMatrixBackend dm;
  const TrajectoryBackend traj{NoiseModel()};

  const auto p_sv = sv.run_state(c);
  const auto p_dm = dm.run_state(c);
  const auto p_traj = traj.run_state(c);
  ASSERT_EQ(p_sv.size(), 9u);
  ASSERT_EQ(p_dm.size(), 9u);
  ASSERT_EQ(p_traj.size(), 9u);
  for (std::size_t i = 0; i < p_sv.size(); ++i) {
    EXPECT_NEAR(p_sv[i], p_dm[i], 1e-12);
    EXPECT_NEAR(p_sv[i], p_traj[i], 1e-12);
  }
  // Bell populations: 1/3 on the three |kk> states.
  const auto& space = c.space();
  for (int k = 0; k < 3; ++k)
    EXPECT_NEAR(p_sv[space.index_of({k, k})], 1.0 / 3.0, 1e-12);

  EXPECT_FALSE(sv.is_noisy());
  EXPECT_FALSE(dm.is_noisy());
  EXPECT_FALSE(traj.is_noisy());
  EXPECT_TRUE(TrajectoryBackend{lossy_noise()}.is_noisy());
  EXPECT_TRUE(DensityMatrixBackend{lossy_noise()}.is_noisy());
}

TEST(Backends, ExpectationMatchesDiagonalContraction) {
  const Circuit c = bell_circuit();
  std::vector<double> diag(c.space().dimension(), 0.0);
  for (int k = 0; k < 3; ++k) diag[c.space().index_of({k, k})] = 1.0;
  // All population sits on |kk>: expectation 1 on every backend.
  EXPECT_NEAR(StateVectorBackend().expectation(c, diag), 1.0, 1e-12);
  EXPECT_NEAR(DensityMatrixBackend().expectation(c, diag), 1.0, 1e-12);
  // Under loss some weight leaves the |kk> manifold.
  const double noisy =
      DensityMatrixBackend{lossy_noise()}.expectation(c, diag);
  EXPECT_LT(noisy, 1.0);
  EXPECT_GT(noisy, 0.5);
}

TEST(Backends, TrajectoryCountsConvergeToDensityMatrixPopulations) {
  const Circuit c = bell_circuit();
  const auto exact = DensityMatrixBackend{lossy_noise()}.run_state(c);

  const std::size_t shots = 8000;
  const auto counts =
      TrajectoryBackend{lossy_noise()}.sample_counts(c, shots, 1234);
  ASSERT_EQ(counts.size(), exact.size());
  std::size_t total = 0;
  for (std::size_t n : counts) total += n;
  EXPECT_EQ(total, shots);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) / shots;
    // 4-sigma band of the binomial estimator.
    const double sigma =
        std::sqrt(exact[i] * (1.0 - exact[i]) / static_cast<double>(shots));
    EXPECT_NEAR(freq, exact[i], 4.0 * sigma + 1e-3) << "index " << i;
  }
}

TEST(Backends, TrajectoryAveragedPopulationsConvergeToo) {
  const Circuit c = bell_circuit();
  const auto exact = DensityMatrixBackend{lossy_noise()}.run_state(c);
  ExecutionRequest request(c);
  request.trajectories = 3000;
  request.seed = 99;
  const ExecutionResult r = TrajectoryBackend{lossy_noise()}.execute(request);
  EXPECT_EQ(r.trajectories, 3000u);
  EXPECT_TRUE(r.counts.empty());  // no shots requested
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_NEAR(r.probabilities[i], exact[i], 0.03) << "index " << i;
}

// ---------------------------------------------------------------------
// Requests and results.
// ---------------------------------------------------------------------

TEST(ExecutionRequest, InitialDigitsAndObservables) {
  Circuit c(QuditSpace::uniform(2, 3));
  c.add("CSUM", csum(3, 3), {0, 1});  // adds site 0's digit onto site 1
  std::vector<double> target_pop(c.space().dimension(), 0.0);
  target_pop[c.space().index_of({1, 2})] = 1.0;
  const ExecutionResult r = StateVectorBackend().execute(
      ExecutionRequest(c).with_initial({1, 1}).with_observable("hit",
                                                               target_pop));
  // |1,1> -> |1, 1+1>.
  EXPECT_NEAR(r.expectation("hit"), 1.0, 1e-12);
  EXPECT_THROW(r.expectation("missing"), std::invalid_argument);
  EXPECT_EQ(r.backend, "statevector");
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(ExecutionRequest, SampledCountsAreSeededAndReproducible) {
  const Circuit c = bell_circuit();
  const StateVectorBackend sv;
  const auto a = sv.sample_counts(c, 500, 42);
  const auto b = sv.sample_counts(c, 500, 42);
  const auto other = sv.sample_counts(c, 500, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(ExecutionRequest, CompiledExecutionReportsSummary) {
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const ExecutionResult r = StateVectorBackend().execute(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  EXPECT_FALSE(r.compile_summary.empty());
  // The physical register has one site per device mode.
  EXPECT_EQ(r.probabilities.size(), 27u);
  // Compiled execution is deterministic under a fixed seed.
  const ExecutionResult r2 = StateVectorBackend().execute(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  EXPECT_EQ(r.probabilities, r2.probabilities);
}

TEST(ExecutionSession, RepeatedCompiledRequestTranspilesExactlyOnce) {
  // The acceptance contract of the transpile cache: a repeated
  // ExecutionRequest with `processor` set transpiles once; the second
  // submission is a cache hit and reuses the artifact (and its plan).
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const StateVectorBackend backend;
  ExecutionSession session(backend);
  const ExecutionResult a = session.submit(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  const ExecutionResult b = session.submit(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  EXPECT_EQ(session.transpile_cache().misses(), 1u);
  EXPECT_EQ(session.transpile_cache().hits(), 1u);
  EXPECT_EQ(session.transpile_cache().size(), 1u);
  // Identical seeds => bitwise-identical simulation results.
  EXPECT_EQ(a.probabilities, b.probabilities);
  EXPECT_FALSE(a.compile_summary.empty());
  // The physical-circuit plan is cached too: one miss, one hit.
  EXPECT_EQ(session.plan_cache().misses(), 1u);
  EXPECT_EQ(session.plan_cache().hits(), 1u);

  // Sessions can share one transpile cache (the serve layer's workers):
  // a third session resolving the same request hits, never misses.
  auto shared = std::make_shared<TranspileCache>(8);
  SessionOptions opts;
  opts.shared_transpile_cache = shared;
  ExecutionSession warm(backend, opts);
  warm.submit(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  EXPECT_EQ(shared->misses(), 1u);
  ExecutionSession reuse(backend, opts);
  reuse.submit(
      ExecutionRequest(bell_circuit()).with_compilation(proc).with_seed(5));
  EXPECT_EQ(shared->misses(), 1u);
  EXPECT_EQ(shared->hits(), 1u);
}

// ---------------------------------------------------------------------
// Parametric requests: binding resolution and the sweep fast path.
// ---------------------------------------------------------------------

/// Bell pair followed by a parametric phase layer (one parameter slot).
Circuit parametric_bell() {
  Circuit c = bell_circuit();
  c.add_parametric("PH",
                   make_diagonal_generator(0xbe11,
                                           [](double angle) {
                                             return std::vector<cplx>{
                                                 cplx{1.0, 0.0},
                                                 std::exp(cplx{0.0, angle}),
                                                 std::exp(cplx{0.0,
                                                               2.0 * angle})};
                                           }),
                   ParamExpr{0, 1.0, 0.0}, {1});
  return c;
}

TEST(ParametricRequests, BindingResolutionIsValidatedAtTheDoor) {
  // Parameters on a non-parametric circuit are a caller bug.
  ExecutionRequest plain(bell_circuit());
  plain.with_parameters({0.1});
  EXPECT_THROW(effective_parameters(plain), std::invalid_argument);
  // A symbolic circuit cannot execute without a binding.
  EXPECT_THROW(effective_parameters(ExecutionRequest(parametric_bell())),
               std::invalid_argument);
  EXPECT_THROW(
      StateVectorBackend().execute(ExecutionRequest(parametric_bell())),
      std::invalid_argument);
  // Arity must match.
  ExecutionRequest wrong(parametric_bell());
  wrong.with_parameters({0.1, 0.2});
  EXPECT_THROW(effective_parameters(wrong), std::invalid_argument);
  // Request-level binding and bound-circuit fallback both resolve.
  ExecutionRequest by_request(parametric_bell());
  by_request.with_parameters({0.4});
  EXPECT_EQ(effective_parameters(by_request), std::vector<double>{0.4});
  const ExecutionRequest by_circuit(parametric_bell().bind({0.4}));
  EXPECT_EQ(effective_parameters(by_circuit), std::vector<double>{0.4});
}

TEST(ExecutionSession, ParametricSweepLowersOnceAndMatchesRebuild) {
  // A sweep of distinct bindings over one symbolic circuit compiles one
  // plan (1 miss, N-1 hits) and every point is bitwise identical to
  // executing the bound circuit from scratch.
  const StateVectorBackend backend;
  ExecutionSession session(backend);
  const Circuit symbolic = parametric_bell();
  constexpr std::size_t kPoints = 16;
  auto angle_of = [](std::size_t k) { return 0.1 + 0.37 * k; };

  std::vector<ExecutionRequest> sweep;
  for (std::size_t k = 0; k < kPoints; ++k) {
    ExecutionRequest request(symbolic);
    request.with_parameters({angle_of(k)}).with_shots(32).with_seed(7);
    sweep.push_back(std::move(request));
  }
  const auto results = session.submit_batch(std::move(sweep));
  EXPECT_EQ(session.plan_cache().misses(), 1u);
  EXPECT_EQ(session.plan_cache().hits(), kPoints - 1);

  ASSERT_EQ(results.size(), kPoints);
  for (std::size_t k = 0; k < kPoints; ++k) {
    ExecutionRequest rebuilt(symbolic.bind({angle_of(k)}));
    rebuilt.with_shots(32).with_seed(7);
    const ExecutionResult direct = backend.execute(rebuilt);
    EXPECT_EQ(results[k].counts, direct.counts);
    ASSERT_EQ(results[k].probabilities.size(), direct.probabilities.size());
    for (std::size_t i = 0; i < direct.probabilities.size(); ++i)
      EXPECT_EQ(results[k].probabilities[i], direct.probabilities[i])
          << "point " << k << " index " << i;
  }
}

TEST(DensityMatrixBackendGuard, RejectsOversizedDenseAllocation) {
  const Circuit c = bell_circuit();  // dim 9
  EXPECT_THROW(
      DensityMatrixBackend().execute(ExecutionRequest(c).with_max_dim(8)),
      std::invalid_argument);
  DensityMatrix rho(c.space());
  EXPECT_THROW(DensityMatrixBackend::apply(c, rho, NoiseModel(), 8),
               std::invalid_argument);
  // Within the cap everything runs.
  EXPECT_NO_THROW(
      DensityMatrixBackend().execute(ExecutionRequest(c).with_max_dim(9)));
}

// ---------------------------------------------------------------------
// Session batching and determinism.
// ---------------------------------------------------------------------

std::vector<ExecutionRequest> bell_batch(std::size_t n) {
  std::vector<ExecutionRequest> batch;
  for (std::size_t i = 0; i < n; ++i)
    batch.push_back(ExecutionRequest(bell_circuit()).with_shots(64));
  return batch;
}

TEST(ExecutionSession, BatchIsBitwiseIdenticalForAnyThreadCount) {
  const TrajectoryBackend backend{lossy_noise()};
  std::vector<std::vector<ExecutionResult>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SessionOptions opts;
    opts.threads = threads;
    opts.seed = 777;
    ExecutionSession session(backend, opts);
    runs.push_back(session.submit_batch(bell_batch(10)));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].seed, runs[1][i].seed);
    EXPECT_EQ(runs[0][i].counts, runs[1][i].counts);
    // Bitwise, not approximate: the whole point of seed-splitting.
    ASSERT_EQ(runs[0][i].probabilities.size(),
              runs[1][i].probabilities.size());
    for (std::size_t k = 0; k < runs[0][i].probabilities.size(); ++k)
      EXPECT_EQ(runs[0][i].probabilities[k], runs[1][i].probabilities[k]);
  }
}

TEST(ExecutionSession, TrajectoryInternalThreadsDontChangeResults) {
  // Same request, trajectory backend worker count 1 vs 4: the fixed-size
  // block reduction keeps results bitwise identical.
  ExecutionRequest request(bell_circuit());
  request.shots = 600;
  request.seed = 4242;
  const ExecutionResult serial =
      TrajectoryBackend(lossy_noise(), 1).execute(request);
  const ExecutionResult parallel =
      TrajectoryBackend(lossy_noise(), 4).execute(request);
  EXPECT_EQ(serial.counts, parallel.counts);
  ASSERT_EQ(serial.probabilities.size(), parallel.probabilities.size());
  for (std::size_t k = 0; k < serial.probabilities.size(); ++k)
    EXPECT_EQ(serial.probabilities[k], parallel.probabilities[k]);
}

TEST(ExecutionSession, AutoSeedsFollowSubmissionOrder) {
  const StateVectorBackend backend;
  SessionOptions opts;
  opts.seed = 31337;
  ExecutionSession a(backend, opts);
  ExecutionSession b(backend, opts);
  // submit + submit on one session == submit_batch of two on another.
  const ExecutionResult first = a.submit(bell_batch(1)[0]);
  const ExecutionResult second = a.submit(bell_batch(1)[0]);
  const auto batch = b.submit_batch(bell_batch(2));
  EXPECT_EQ(first.seed, batch[0].seed);
  EXPECT_EQ(second.seed, batch[1].seed);
  EXPECT_NE(first.seed, second.seed);
  EXPECT_EQ(first.counts, batch[0].counts);
  EXPECT_EQ(second.counts, batch[1].counts);
  // Explicit seeds pass through untouched.
  const ExecutionResult fixed =
      a.submit(bell_batch(1)[0].with_seed(123456789));
  EXPECT_EQ(fixed.seed, 123456789u);
  EXPECT_EQ(a.requests_executed(), 3u);
}

// ---------------------------------------------------------------------
// Failure paths: a backend that throws mid-batch must not deadlock the
// pool, and the first exception must reach the submitter.
// ---------------------------------------------------------------------

/// Statevector-like backend that throws on requests whose seed satisfies
/// `poisoned(seed)`. Seeds are assigned before fan-out, so which request
/// blows up is deterministic for any thread count.
class FaultInjectionBackend final : public Backend {
 public:
  explicit FaultInjectionBackend(bool (*poisoned)(std::uint64_t))
      : poisoned_(poisoned) {}

  std::string name() const override { return "faulty"; }
  bool is_noisy() const override { return false; }
  ExecutionResult execute(const ExecutionRequest& request) const override {
    if (poisoned_(request.seed))
      throw std::runtime_error("injected fault for seed " +
                               std::to_string(request.seed));
    return StateVectorBackend().execute(request);
  }

 private:
  bool (*poisoned_)(std::uint64_t);
};

TEST(ExecutionSessionFailure, MidBatchThrowSurfacesAndPoolSurvives) {
  const FaultInjectionBackend backend(
      [](std::uint64_t seed) { return seed % 3 == 0; });
  SessionOptions opts;
  opts.threads = 4;
  ExecutionSession session(backend, opts);

  std::vector<ExecutionRequest> batch;
  for (std::uint64_t s = 0; s < 12; ++s)
    batch.push_back(ExecutionRequest(bell_circuit()).with_seed(s + 1));
  // Seeds 3, 6, 9, 12 are poisoned; the batch must throw (first failure
  // wins) instead of hanging a worker.
  EXPECT_THROW(session.submit_batch(std::move(batch)), std::runtime_error);

  // The session (and its thread fan-out) stays usable afterwards.
  std::vector<ExecutionRequest> clean;
  for (std::uint64_t s = 0; s < 8; ++s)
    clean.push_back(ExecutionRequest(bell_circuit()).with_seed(3 * s + 1));
  const auto results = session.submit_batch(std::move(clean));
  ASSERT_EQ(results.size(), 8u);
  for (const ExecutionResult& r : results)
    EXPECT_NEAR(r.probabilities[0], 1.0 / 3.0, 1e-12);
}

TEST(ExecutionSessionFailure, EveryRequestThrowingStillReturns) {
  // Degenerate corner: every worker task throws at once; the pool must
  // join all workers and rethrow exactly one exception.
  const FaultInjectionBackend backend([](std::uint64_t) { return true; });
  SessionOptions opts;
  opts.threads = 4;
  ExecutionSession session(backend, opts);
  std::vector<ExecutionRequest> batch;
  for (std::uint64_t s = 0; s < 16; ++s)
    batch.push_back(ExecutionRequest(bell_circuit()).with_seed(s + 1));
  try {
    session.submit_batch(std::move(batch));
    FAIL() << "expected the injected fault to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
}

TEST(ExecutionSessionFailure, SingleSubmitPropagatesBackendError) {
  const FaultInjectionBackend backend([](std::uint64_t) { return true; });
  ExecutionSession session(backend);
  EXPECT_THROW(session.submit(ExecutionRequest(bell_circuit()).with_seed(1)),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Seed splitting and legacy shims.
// ---------------------------------------------------------------------

TEST(SplitSeed, StreamsAreDistinctAndPure) {
  EXPECT_EQ(split_seed(1, 0), split_seed(1, 0));
  EXPECT_NE(split_seed(1, 0), split_seed(1, 1));
  EXPECT_NE(split_seed(1, 0), split_seed(2, 0));
  // No short-cycle collisions over a small window.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4096; ++s) seen.push_back(split_seed(9, s));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// This suite exercises the deprecated shims on purpose (they must keep
// matching the backend primitives until removal), so the deprecation
// markers are silenced locally.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

TEST(LegacyShims, MatchBackendPrimitives) {
  const Circuit c = bell_circuit();
  const StateVector via_shim = run_from_vacuum(c);
  const auto populations = StateVectorBackend().run_state(c);
  for (std::size_t i = 0; i < populations.size(); ++i)
    EXPECT_NEAR(std::norm(via_shim.amplitude(i)), populations[i], 1e-15);

  DensityMatrix rho_shim(c.space());
  run_noisy(c, rho_shim, lossy_noise());
  const auto noisy = DensityMatrixBackend{lossy_noise()}.run_state(c);
  const auto shim_probs = rho_shim.probabilities();
  for (std::size_t i = 0; i < noisy.size(); ++i)
    EXPECT_NEAR(shim_probs[i], noisy[i], 1e-15);

  // Trajectory shim: same rng stream -> same trajectory as the primitive.
  Rng r1(7), r2(7);
  StateVector psi_shim(c.space());
  StateVector psi_backend(c.space());
  run_trajectory(c, psi_shim, lossy_noise(), r1);
  TrajectoryBackend::apply(c, psi_backend, lossy_noise(), r2);
  for (std::size_t i = 0; i < psi_shim.dimension(); ++i)
    EXPECT_EQ(psi_shim.amplitude(i), psi_backend.amplitude(i));
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace qs
