// Shared helpers for the test suites (not a test target: the build
// globs tests/test_*.cpp only).
#ifndef QS_TESTS_TEST_SUPPORT_H
#define QS_TESTS_TEST_SUPPORT_H

#include "circuit/circuit.h"
#include "exec/state_vector_backend.h"
#include "qudit/state_vector.h"

namespace qs {
namespace test_support {

/// Final pure state of a circuit run from the vacuum: the migration
/// replacement for the deprecated run_from_vacuum shim in tests that
/// assert on amplitudes rather than populations.
inline StateVector final_state(const Circuit& c) {
  StateVector psi(c.space());
  StateVectorBackend::apply(c, psi);
  return psi;
}

}  // namespace test_support
}  // namespace qs

#endif  // QS_TESTS_TEST_SUPPORT_H
