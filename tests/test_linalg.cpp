#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "linalg/expm.h"
#include "linalg/matrix.h"
#include "linalg/metrics.h"
#include "linalg/real_matrix.h"
#include "linalg/types.h"

namespace qs {
namespace {

Matrix pauli_x() { return Matrix{{0.0, 1.0}, {1.0, 0.0}}; }
Matrix pauli_z() { return Matrix{{1.0, 0.0}, {0.0, -1.0}}; }

TEST(Matrix, IdentityAndTrace) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id.trace(), cplx(3.0, 0.0));
  EXPECT_TRUE(id.is_unitary());
  EXPECT_TRUE(id.is_hermitian());
}

TEST(Matrix, MultiplicationAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), cplx(2.0, 0.0));
  EXPECT_EQ(c(0, 1), cplx(1.0, 0.0));
  EXPECT_EQ(c(1, 0), cplx(4.0, 0.0));
  EXPECT_EQ(c(1, 1), cplx(3.0, 0.0));
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  Matrix a(2, 2);
  a(0, 1) = cplx{1.0, 2.0};
  const Matrix ad = a.adjoint();
  EXPECT_EQ(ad(1, 0), cplx(1.0, -2.0));
  EXPECT_EQ(ad(0, 1), cplx(0.0, 0.0));
}

TEST(Matrix, KroneckerDimensionsAndValues) {
  const Matrix k = kron(pauli_x(), Matrix::identity(2));
  EXPECT_EQ(k.rows(), 4u);
  // X (x) I: block anti-diagonal identity blocks.
  EXPECT_EQ(k(0, 2), cplx(1.0, 0.0));
  EXPECT_EQ(k(1, 3), cplx(1.0, 0.0));
  EXPECT_EQ(k(2, 0), cplx(1.0, 0.0));
  EXPECT_EQ(k(0, 0), cplx(0.0, 0.0));
}

TEST(Matrix, KronMixedDimensions) {
  const Matrix a(2, 3);
  const Matrix b(4, 5);
  const Matrix k = kron(a, b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, kI}, {0.0, 2.0}};
  const std::vector<cplx> x{1.0, 1.0};
  const std::vector<cplx> y = a * x;
  EXPECT_NEAR(std::abs(y[0] - (cplx{1.0, 1.0})), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - cplx{2.0, 0.0}), 0.0, 1e-14);
}

TEST(Matrix, DiagonalBuilder) {
  const Matrix d = Matrix::diagonal({1.0, 2.0, 3.0});
  EXPECT_EQ(d(2, 2), cplx(3.0, 0.0));
  EXPECT_EQ(d(0, 1), cplx(0.0, 0.0));
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Expm, HermitianRouteMatchesSeries) {
  Rng rng(9);
  // Random Hermitian 5x5.
  Matrix h(5, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    h(r, r) = rng.normal();
    for (std::size_t c = r + 1; c < 5; ++c) {
      h(r, c) = rng.complex_normal();
      h(c, r) = std::conj(h(r, c));
    }
  }
  const Matrix via_eig = expm_hermitian(h, cplx{0.0, -0.3});
  Matrix scaled = h * cplx{0.0, -0.3};
  const Matrix via_series = expm(scaled);
  EXPECT_LT(max_abs_diff(via_eig, via_series), 1e-10);
}

TEST(Expm, EvolutionUnitaryIsUnitary) {
  const Matrix h = pauli_x() + pauli_z();
  const Matrix u = evolution_unitary(h, 0.7);
  EXPECT_TRUE(u.is_unitary(1e-10));
}

TEST(Expm, PauliRotationClosedForm) {
  // exp(-i theta X) = cos(theta) I - i sin(theta) X.
  const double theta = 0.42;
  const Matrix u = evolution_unitary(pauli_x(), theta);
  Matrix expected = Matrix::identity(2) * cplx{std::cos(theta), 0.0};
  expected += pauli_x() * cplx{0.0, -std::sin(theta)};
  EXPECT_LT(max_abs_diff(u, expected), 1e-12);
}

TEST(Expm, IdentityExponentialOfZero) {
  const Matrix z(3, 3);
  EXPECT_LT(max_abs_diff(expm(z), Matrix::identity(3)), 1e-14);
}

TEST(Metrics, StateFidelityBounds) {
  const std::vector<cplx> a{1.0, 0.0};
  const std::vector<cplx> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(state_fidelity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(state_fidelity(a, b), 0.0);
}

TEST(Metrics, UnitaryFidelityPhaseInvariant) {
  Rng rng(4);
  Matrix h(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    h(r, r) = rng.normal();
    for (std::size_t c = r + 1; c < 3; ++c) {
      h(r, c) = rng.complex_normal();
      h(c, r) = std::conj(h(r, c));
    }
  }
  const Matrix u = evolution_unitary(h, 0.3);
  const Matrix u_phase = u * std::exp(kI * 1.234);
  EXPECT_NEAR(unitary_fidelity(u, u_phase), 1.0, 1e-12);
}

TEST(Metrics, DensityFidelityPureStates) {
  // F(|0><0|, |+><+|) = 0.5.
  Matrix rho0(2, 2);
  rho0(0, 0) = 1.0;
  Matrix rhop(2, 2);
  rhop(0, 0) = rhop(0, 1) = rhop(1, 0) = rhop(1, 1) = 0.5;
  EXPECT_NEAR(density_fidelity(rho0, rhop), 0.5, 1e-9);
}

TEST(Metrics, TraceDistanceOrthogonalPureStates) {
  Matrix rho0(2, 2), rho1(2, 2);
  rho0(0, 0) = 1.0;
  rho1(1, 1) = 1.0;
  EXPECT_NEAR(trace_distance(rho0, rho1), 1.0, 1e-10);
}

TEST(Metrics, ProjectToDensityClipsNegativeEigenvalues) {
  Matrix a(2, 2);
  a(0, 0) = 1.2;
  a(1, 1) = -0.2;
  const Matrix rho = project_to_density(a);
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-12);
  EXPECT_GE(rho(1, 1).real(), -1e-12);
}

TEST(Metrics, AverageGateFidelityIdentity) {
  const Matrix u = Matrix::identity(4);
  EXPECT_NEAR(average_gate_fidelity(u, u), 1.0, 1e-12);
}

TEST(RealMatrix, CholeskySolveRoundTrip) {
  RMatrix a(3, 3);
  // SPD matrix A = M M^T + I.
  RMatrix m(3, 3);
  Rng rng(21);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = rng.normal();
  a = m * m.transpose();
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 1.0;
  RMatrix b(3, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = rng.normal();
  const RMatrix x = cholesky_solve(a, b);
  const RMatrix ax = a * x;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_NEAR(ax(r, c), b(r, c), 1e-10);
}

TEST(RealMatrix, CholeskyRejectsIndefinite) {
  RMatrix a = RMatrix::identity(2);
  a(1, 1) = -1.0;
  RMatrix b(2, 1);
  EXPECT_THROW(cholesky_solve(a, b), std::invalid_argument);
}

TEST(RealMatrix, RidgeRecoversExactLinearMap) {
  Rng rng(33);
  const std::size_t samples = 50, features = 4;
  RMatrix x(samples, features), w_true(features, 2);
  for (std::size_t r = 0; r < samples; ++r)
    for (std::size_t c = 0; c < features; ++c) x(r, c) = rng.normal();
  for (std::size_t r = 0; r < features; ++r)
    for (std::size_t c = 0; c < 2; ++c) w_true(r, c) = rng.normal();
  const RMatrix y = x * w_true;
  const RMatrix w = ridge_fit(x, y, 0.0);
  for (std::size_t r = 0; r < features; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(w(r, c), w_true(r, c), 1e-6);
}

TEST(RealMatrix, RidgeShrinksWeights) {
  Rng rng(34);
  RMatrix x(30, 3), y(30, 1);
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.normal();
    y(r, 0) = rng.normal();
  }
  const RMatrix w0 = ridge_fit(x, y, 0.0);
  const RMatrix w1 = ridge_fit(x, y, 100.0);
  double n0 = 0.0, n1 = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    n0 += w0(r, 0) * w0(r, 0);
    n1 += w1(r, 0) * w1(r, 0);
  }
  EXPECT_LT(n1, n0);
}

}  // namespace
}  // namespace qs
