#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gates/bosonic.h"
#include "linalg/metrics.h"
#include "tomo/reservoir_tomography.h"

namespace qs {
namespace {

Matrix pure_density(const std::vector<cplx>& psi) {
  Matrix rho(psi.size(), psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i)
    for (std::size_t j = 0; j < psi.size(); ++j)
      rho(i, j) = psi[i] * std::conj(psi[j]);
  return rho;
}

std::vector<Matrix> training_zoo(int d, int count, Rng& rng) {
  std::vector<Matrix> states;
  for (int i = 0; i < count; ++i)
    states.push_back(random_density(d, 1 + static_cast<int>(rng.index(3)),
                                    rng));
  return states;
}

TEST(TomoParams, HermitianRoundTrip) {
  Rng rng(111);
  const Matrix rho = random_density(5, 3, rng);
  const auto params = hermitian_to_params(rho);
  EXPECT_EQ(params.size(), 25u);
  const Matrix back = params_to_hermitian(params, 5);
  EXPECT_LT(max_abs_diff(rho, back), 1e-12);
}

TEST(TomoParams, RandomDensityIsValid) {
  Rng rng(112);
  for (int rank : {1, 2, 4}) {
    const Matrix rho = random_density(4, rank, rng);
    EXPECT_NEAR(rho.trace().real(), 1.0, 1e-10);
    EXPECT_TRUE(rho.is_hermitian(1e-10));
    EXPECT_GT(purity(rho), 0.2);
  }
}

TEST(Tomo, MeasurementIsNumberResolved) {
  // With all probes at the origin, the record is the Fock distribution.
  TomoConfig cfg;
  cfg.levels = 6;
  cfg.num_probes = 2;
  cfg.probe_radius = 0.0;  // all probes at the origin
  ReservoirTomography tomo(cfg);
  Rng rng(113);
  Matrix vac(6, 6);
  vac(0, 0) = 1.0;
  const auto f = tomo.measure(vac, rng);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_NEAR(f[0], 1.0, 1e-9);   // P(n=0) of probe 0
  EXPECT_NEAR(f[1], 0.0, 1e-9);
  const Matrix one = pure_density(fock_state(6, 1));
  const auto f1 = tomo.measure(one, rng);
  EXPECT_NEAR(f1[0], 0.0, 1e-9);
  EXPECT_NEAR(f1[1], 1.0, 1e-9);  // P(n=1)
}

TEST(Tomo, ReconstructsCoherentState) {
  TomoConfig cfg;
  cfg.levels = 6;
  cfg.num_probes = 14;
  ReservoirTomography tomo(cfg);
  Rng rng(114);
  tomo.train(training_zoo(6, 160, rng), 1e-8, rng);
  const Matrix target = pure_density(coherent_state(6, cplx{0.7, 0.3}));
  const auto features = tomo.measure(target, rng);
  const Matrix recon = tomo.reconstruct(features);
  EXPECT_GT(density_fidelity(recon, target), 0.95);
}

TEST(Tomo, ReconstructsCatState) {
  TomoConfig cfg;
  cfg.levels = 8;
  cfg.num_probes = 18;
  ReservoirTomography tomo(cfg);
  Rng rng(115);
  tomo.train(training_zoo(8, 260, rng), 1e-8, rng);
  const Matrix target = pure_density(cat_state(8, cplx{1.0, 0.0}, 1));
  const Matrix recon = tomo.reconstruct(tomo.measure(target, rng));
  EXPECT_GT(density_fidelity(recon, target), 0.9);
}

TEST(Tomo, DirectInversionMatchesOnIdealData) {
  // Without decoherence and with exact features, direct inversion is
  // near-perfect (sanity of the measurement model).
  TomoConfig cfg;
  cfg.levels = 5;
  cfg.num_probes = 12;
  ReservoirTomography tomo(cfg);
  Rng rng(116);
  const Matrix target = random_density(5, 2, rng);
  const Matrix recon = tomo.invert_directly(tomo.measure(target, rng), 1e-10);
  EXPECT_GT(density_fidelity(recon, target), 0.98);
}

TEST(Tomo, TrainedMapCompensatesDecoherence) {
  // The paper/ref [28] claim: the learned reservoir map absorbs loss
  // between preparation and measurement, while direct inversion (which
  // assumes the ideal model) reconstructs the decayed state.
  TomoConfig cfg;
  cfg.levels = 6;
  cfg.num_probes = 14;
  cfg.loss_gamma = 0.15;
  ReservoirTomography tomo(cfg);
  Rng rng(117);
  tomo.train(training_zoo(6, 200, rng), 1e-8, rng);
  const Matrix target = pure_density(coherent_state(6, cplx{0.9, -0.4}));
  const auto features = tomo.measure(target, rng);
  const double trained_f =
      density_fidelity(tomo.reconstruct(features), target);
  const double inverted_f =
      density_fidelity(tomo.invert_directly(features, 1e-6), target);
  EXPECT_GT(trained_f, inverted_f);
  EXPECT_GT(trained_f, 0.9);
}

TEST(Tomo, MoreTrainingDataHelps) {
  TomoConfig cfg;
  cfg.levels = 5;
  cfg.num_probes = 10;
  cfg.shots = 128;  // noisy measurements make data volume matter
  Rng rng(118);
  const Matrix target = pure_density(coherent_state(5, cplx{0.6, 0.2}));
  double small_f = 0.0, big_f = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    ReservoirTomography t_small(cfg);
    t_small.train(training_zoo(5, 30, rng), 1e-4, rng);
    small_f += density_fidelity(t_small.reconstruct(t_small.measure(target,
                                                                    rng)),
                                target);
    ReservoirTomography t_big(cfg);
    t_big.train(training_zoo(5, 300, rng), 1e-4, rng);
    big_f += density_fidelity(t_big.reconstruct(t_big.measure(target, rng)),
                              target);
  }
  EXPECT_GT(big_f, small_f - 0.05);
}

TEST(Tomo, ReconstructionIsPhysical) {
  TomoConfig cfg;
  cfg.levels = 5;
  cfg.num_probes = 10;
  cfg.shots = 64;  // heavy shot noise
  ReservoirTomography tomo(cfg);
  Rng rng(119);
  tomo.train(training_zoo(5, 80, rng), 1e-3, rng);
  const Matrix target = random_density(5, 2, rng);
  const Matrix recon = tomo.reconstruct(tomo.measure(target, rng));
  EXPECT_NEAR(recon.trace().real(), 1.0, 1e-9);
  EXPECT_TRUE(recon.is_hermitian(1e-9));
  // PSD: all eigenvalues nonnegative via fidelity with itself being sane.
  EXPECT_GE(purity(recon), 1.0 / 5.0 - 1e-9);
}

}  // namespace
}  // namespace qs
