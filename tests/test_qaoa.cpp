#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "qaoa/coloring_qaoa.h"
#include "qaoa/graph.h"
#include "qaoa/ndar.h"
#include "qaoa/qrac.h"

namespace qs {
namespace {

Graph triangle() {
  Graph g;
  g.n = 3;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  return g;
}

Graph cycle(int n) {
  Graph g;
  g.n = n;
  for (int i = 0; i < n; ++i) g.edges.emplace_back(i, (i + 1) % n);
  return g;
}

TEST(GraphUtils, ColoredEdgesCounts) {
  const Graph g = triangle();
  EXPECT_EQ(colored_edges(g, {0, 1, 2}), 3);
  EXPECT_EQ(colored_edges(g, {0, 0, 0}), 0);
  EXPECT_EQ(colored_edges(g, {0, 0, 1}), 2);
}

TEST(GraphUtils, OptimalByBruteForce) {
  const Graph g = triangle();
  EXPECT_EQ(optimal_colored_edges(g, 3), 3);
  EXPECT_EQ(optimal_colored_edges(g, 2), 2);  // triangle not 2-colorable
  const Graph c5 = cycle(5);
  EXPECT_EQ(optimal_colored_edges(c5, 2), 4);  // odd cycle
  EXPECT_EQ(optimal_colored_edges(c5, 3), 5);
}

TEST(GraphUtils, RandomGraphEdgeCount) {
  Rng rng(81);
  const Graph g = random_graph(30, 0.3, rng);
  EXPECT_EQ(g.n, 30);
  // Expect ~ 0.3 * C(30,2) = 130.5 edges.
  EXPECT_GT(g.num_edges(), 80u);
  EXPECT_LT(g.num_edges(), 190u);
}

TEST(GraphUtils, RegularGraphDegrees) {
  Rng rng(82);
  const Graph g = random_regular_graph(12, 3, rng);
  std::vector<int> deg(12, 0);
  for (const auto& [a, b] : g.edges) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  for (int d : deg) EXPECT_EQ(d, 3);
}

TEST(GraphUtils, GreedyBeatsRandomOnAverage) {
  Rng rng(83);
  const Graph g = random_regular_graph(20, 4, rng);
  const double random_score = random_coloring_mean(g, 3, 200, rng);
  const int greedy_score = colored_edges(g, greedy_coloring(g, 3));
  EXPECT_GT(greedy_score, random_score);
}

TEST(ColoringQaoa, CostDiagonalMatchesDecoding) {
  const ColoringQaoa qaoa(triangle(), 3);
  const std::vector<int> zero(3, 0);
  const auto diag = qaoa.cost_diagonal(zero);
  // State |0,1,2> has all edges colored.
  const std::size_t idx = qaoa.space().index_of({0, 1, 2});
  EXPECT_DOUBLE_EQ(diag[idx], 3.0);
  EXPECT_DOUBLE_EQ(diag[0], 0.0);
}

TEST(ColoringQaoa, OffsetsShiftDecoding) {
  const ColoringQaoa qaoa(triangle(), 3);
  // offsets (0,1,2): the attractor |000> decodes to coloring (0,1,2).
  const auto coloring = qaoa.decode(0, {0, 1, 2});
  EXPECT_EQ(coloring, (std::vector<int>{0, 1, 2}));
  const auto diag = qaoa.cost_diagonal({0, 1, 2});
  EXPECT_DOUBLE_EQ(diag[0], 3.0);
}

TEST(ColoringQaoa, UniformSuperpositionExpectation) {
  // gamma = 0 leaves the uniform state: expected cost = E * (1 - 1/k).
  const ColoringQaoa qaoa(triangle(), 3);
  const double cost = qaoa.expected_cost({0.0}, {0.0});
  EXPECT_NEAR(cost, 3.0 * (1.0 - 1.0 / 3.0), 1e-9);
}

TEST(ColoringQaoa, OptimizedP1BeatsUniform) {
  Rng rng(84);
  const Graph g = cycle(5);
  const ColoringQaoa qaoa(g, 3);
  const auto [gamma, beta] = qaoa.optimize_p1(9);
  const double uniform = 5.0 * (1.0 - 1.0 / 3.0);
  EXPECT_GT(qaoa.expected_cost({gamma}, {beta}), uniform + 0.05);
}

TEST(ColoringQaoa, SamplingMatchesExpectation) {
  Rng rng(85);
  const ColoringQaoa qaoa(triangle(), 3);
  const std::vector<int> zero(3, 0);
  const Circuit c = qaoa.build_circuit({0.8}, {0.4}, zero);
  const auto samples =
      qaoa.sample_colorings(c, zero, 3000, NoiseModel(), rng);
  double mean = 0.0;
  for (const auto& coloring : samples)
    mean += colored_edges(qaoa.graph(), coloring);
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, qaoa.expected_cost({0.8}, {0.4}), 0.1);
}

TEST(Ndar, LossDrivesAttractorToRemappedBest) {
  // With strong photon loss the samples collapse toward |0...0>, which
  // NDAR remaps to the best-known coloring: P(best) should grow.
  Rng rng(86);
  const Graph g = cycle(6);
  const ColoringQaoa qaoa(g, 3);
  NoiseParams p;
  p.loss_per_gate = 0.05;
  const NoiseModel noise(p);
  NdarOptions opt;
  opt.rounds = 4;
  opt.shots = 96;
  const NdarResult ndar = run_ndar(qaoa, 0.9, 0.5, noise, opt, rng);
  ASSERT_EQ(ndar.best_cost_per_round.size(), 4u);
  // Best-so-far is monotone.
  for (std::size_t r = 1; r < 4; ++r)
    EXPECT_GE(ndar.best_cost_per_round[r], ndar.best_cost_per_round[r - 1]);
  EXPECT_GT(ndar.best_cost, 0);
}

TEST(Ndar, RemapBeatsVanillaUnderLoss) {
  // In the strong-loss regime the attractor dominates: with remapping the
  // attractor is the best-known coloring (samples stay good); without it
  // the attractor is the all-equal coloring (samples collapse to cost 0).
  Rng rng(87);
  const Graph g = cycle(6);
  const ColoringQaoa qaoa(g, 3);
  NoiseParams p;
  p.loss_per_gate = 0.2;
  const NoiseModel noise(p);
  NdarOptions remap_opt;
  remap_opt.rounds = 6;
  remap_opt.shots = 96;
  NdarOptions vanilla_opt = remap_opt;
  vanilla_opt.remap = false;
  // Average final mean cost over a few seeds to be robust.
  double remap_mean = 0.0, vanilla_mean = 0.0;
  for (int seed = 0; seed < 4; ++seed) {
    Rng r1(900 + seed), r2(900 + seed);
    remap_mean +=
        run_ndar(qaoa, 0.9, 0.5, noise, remap_opt, r1).mean_cost_per_round.back();
    vanilla_mean +=
        run_ndar(qaoa, 0.9, 0.5, noise, vanilla_opt, r2).mean_cost_per_round.back();
  }
  EXPECT_GT(remap_mean, vanilla_mean);
}

TEST(Qrac, QuditsNeededArithmetic) {
  EXPECT_EQ(qrac_qudits_needed(50, 10), 1);   // 99 slots
  EXPECT_EQ(qrac_qudits_needed(100, 10), 2);
  EXPECT_EQ(qrac_qudits_needed(9, 3), 2);     // 8 slots each
}

TEST(Qrac, LocalSearchNeverWorsens) {
  Rng rng(88);
  const Graph g = random_regular_graph(16, 3, rng);
  std::vector<int> coloring(16, 0);
  const int before = colored_edges(g, coloring);
  const auto after = local_search_coloring(g, coloring, 3, 5);
  EXPECT_GE(colored_edges(g, after), before);
}

TEST(Qrac, SolvesSmallInstanceAboveRandom) {
  Rng rng(89);
  const Graph g = random_regular_graph(18, 3, rng);
  QracOptions opt;
  opt.qudit_dim = 5;  // 24 slots: one qudit
  opt.colors = 3;
  opt.spsa_iters = 150;
  opt.local_search = false;
  const QracResult res = solve_qrac_coloring(g, opt, rng);
  EXPECT_EQ(res.qudits_used, 1);
  const double random_score = random_coloring_mean(g, 3, 300, rng);
  EXPECT_GT(res.raw_colored_edges, random_score - 1.5);
  EXPECT_GT(res.relaxed_objective, 0.0);
}

TEST(Qrac, FiftyNodeInstanceRunsOnTwoQudits) {
  // The Table I row: 50+ nodes via QRACs on few qudits.
  Rng rng(90);
  const Graph g = random_regular_graph(50, 3, rng);
  QracOptions opt;
  opt.qudit_dim = 8;  // 63 slots
  opt.colors = 3;
  opt.spsa_iters = 120;
  const QracResult res = solve_qrac_coloring(g, opt, rng);
  EXPECT_EQ(res.qudits_used, 1);
  // With local search the result should be decent (>= greedy - small gap).
  const int greedy = colored_edges(g, greedy_coloring(g, 3));
  EXPECT_GE(res.colored_edges, greedy - 8);
  EXPECT_LE(res.colored_edges, static_cast<int>(g.num_edges()));
}

}  // namespace
}  // namespace qs
