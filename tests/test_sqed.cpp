#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "noise/noise_model.h"
#include "sqed/encodings.h"
#include "sqed/gauge_model.h"
#include "sqed/massgap.h"

namespace qs {
namespace {

TEST(GaugeModel, RotorOperators) {
  const Matrix lz = rotor_lz(3);
  EXPECT_NEAR(lz(0, 0).real(), -1.0, 1e-12);
  EXPECT_NEAR(lz(1, 1).real(), 0.0, 1e-12);
  EXPECT_NEAR(lz(2, 2).real(), 1.0, 1e-12);
  const Matrix u = rotor_raise(3);
  EXPECT_EQ(u(1, 0), cplx(1.0, 0.0));
  EXPECT_EQ(u(2, 1), cplx(1.0, 0.0));
  EXPECT_EQ(u(0, 2), cplx(0.0, 0.0));  // clamped at truncation
}

TEST(GaugeModel, ChainIsHermitianAndLocal) {
  const Hamiltonian h = gauge_chain(3, {3, 1.0, 1.0});
  EXPECT_EQ(h.space().dimension(), 27u);
  EXPECT_EQ(h.num_terms(), 3u + 2u);  // 3 electric + 2 hopping
  EXPECT_TRUE(h.dense().is_hermitian(1e-9));
}

TEST(GaugeModel, ConservesTotalLz) {
  // [H, sum Lz] = 0: the hopping term moves +1 on one site and -1 on the
  // neighbour.
  const Hamiltonian h = gauge_chain(3, {3, 1.0, 0.7});
  const Matrix dense = h.dense();
  Matrix total_lz(27, 27);
  const QuditSpace space = h.space();
  for (std::size_t i = 0; i < 27; ++i) {
    double m = 0.0;
    for (std::size_t s = 0; s < 3; ++s) m += space.digit(i, s) - 1.0;
    total_lz(i, i) = m;
  }
  const Matrix comm = dense * total_lz - total_lz * dense;
  EXPECT_LT(comm.max_abs(), 1e-10);
}

TEST(GaugeModel, StrongCouplingGroundState) {
  // For lambda -> 0 the ground state is |m=0...0> with energy 0.
  const Hamiltonian h = gauge_chain(3, {3, 1.0, 0.0});
  const EigResult er = eigh(h.dense());
  EXPECT_NEAR(er.values[0], 0.0, 1e-10);
  // Gap to the first excited state: g2/2 * (1) * 2 sites changed... the
  // cheapest excitation flips one rotor to m = +-1: cost g2/2.
  EXPECT_NEAR(er.values[1], 0.5, 1e-10);
}

TEST(GaugeModel, Ladder2DMatchesGridEdges) {
  const Hamiltonian h = gauge_ladder_2d(3, 2, {3, 1.0, 1.0});
  // 6 sites, edges: horizontal 2*2=4... grid 3x2: x-edges 2 per row * 2
  // rows = 4, y-edges 3.
  EXPECT_EQ(grid_edges(3, 2).size(), 7u);
  EXPECT_EQ(h.num_terms(), 6u + 7u);
}

TEST(GaugeModel, ElectricDiagonalMatchesOperator) {
  const Hamiltonian h = gauge_chain(2, {3, 2.0, 0.3});
  const auto diag = electric_energy_diagonal(h.space());
  // |m=(1,-1)> -> digits (2, 0): e = 1 + 1 = 2.
  EXPECT_NEAR(diag[h.space().index_of({2, 0})], 2.0, 1e-12);
  EXPECT_NEAR(diag[h.space().index_of({1, 1})], 0.0, 1e-12);
}

TEST(Encodings, QubitsForLevels) {
  EXPECT_EQ(qubits_for_levels(2), 1);
  EXPECT_EQ(qubits_for_levels(3), 2);
  EXPECT_EQ(qubits_for_levels(4), 2);
  EXPECT_EQ(qubits_for_levels(5), 3);
  EXPECT_EQ(qubits_for_levels(8), 3);
}

TEST(Encodings, BinaryEncodingPreservesPhysicalSpectrum) {
  // The encoded Hamiltonian restricted to physical basis states must have
  // the qudit spectrum; unphysical states are zero-energy.
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 0.8});
  const Hamiltonian enc = encode_binary(h);
  EXPECT_EQ(enc.space().dimension(), 16u);  // 2 sites x 2 qubits
  const EigResult small = eigh(h.dense());
  const EigResult big = eigh(enc.dense());
  // Every qudit eigenvalue appears in the encoded spectrum.
  for (double ev : small.values) {
    double best = 1e9;
    for (double bv : big.values) best = std::min(best, std::abs(bv - ev));
    EXPECT_LT(best, 1e-8) << "missing eigenvalue " << ev;
  }
}

TEST(Encodings, ElementaryCostsOrdered) {
  EXPECT_EQ(elementary_gate_cost(1, false), 1);
  EXPECT_LT(elementary_gate_cost(2, true), elementary_gate_cost(2, false) + 1);
  EXPECT_LT(elementary_gate_cost(2, false), elementary_gate_cost(3, false));
  EXPECT_LT(elementary_gate_cost(3, false), elementary_gate_cost(4, false));
}

TEST(Encodings, TrotterMultiplicityTagging) {
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const Circuit native = native_trotter_circuit(h, {1, 0.1, 1});
  for (const auto& op : native.operations())
    EXPECT_EQ(op.noise_multiplicity, 1);
  const Circuit binary = binary_trotter_circuit(encode_binary(h), {1, 0.1, 1});
  int max_mult = 0;
  for (const auto& op : binary.operations())
    max_mult = std::max(max_mult, op.noise_multiplicity);
  // Hopping terms act on 4 qubits: expensive.
  EXPECT_EQ(max_mult, elementary_gate_cost(4, false));
}

TEST(Encodings, BinaryTrotterMatchesNativeDynamics) {
  // Noiseless evolution of the same initial physical state must agree
  // between encodings (both approximate the same H).
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const Hamiltonian enc = encode_binary(h);
  const TrotterOptions opt{2, 0.05, 4};
  const Circuit cn = native_trotter_circuit(h, opt);
  const Circuit cb = binary_trotter_circuit(enc, opt);

  const auto diag_n = electric_energy_diagonal(h.space());
  const auto diag_b = electric_energy_diagonal_binary(h.space());

  const auto series_n =
      quench_series(cn, diag_n, {1, 1}, NoiseModel(), 10);
  // Initial digits for binary: level 1 -> binary (1, 0) per site.
  const auto series_b =
      quench_series(cb, diag_b, {1, 0, 1, 0}, NoiseModel(), 10);
  for (std::size_t i = 0; i < series_n.size(); ++i)
    EXPECT_NEAR(series_n[i], series_b[i], 1e-9) << "i=" << i;
}

TEST(MassGap, DominantFrequencyOfPureTone) {
  const double w = 1.7;
  const double dt = 0.25;
  std::vector<double> series;
  for (int n = 0; n < 128; ++n)
    series.push_back(3.0 + std::cos(w * dt * n));
  EXPECT_NEAR(dominant_frequency(series, dt), w, 0.05);
}

TEST(MassGap, FrequencyOfMixedTonesPicksStronger) {
  const double dt = 0.2;
  std::vector<double> series;
  for (int n = 0; n < 200; ++n)
    series.push_back(2.0 * std::cos(1.1 * dt * n) +
                     0.4 * std::cos(2.9 * dt * n));
  EXPECT_NEAR(dominant_frequency(series, dt), 1.1, 0.05);
}

TEST(MassGap, NoiselessQuenchMatchesExactEigengap) {
  // The dominant frequency of <E>(t) must equal an exact eigenvalue
  // difference of states sharing overlap with |m=0...0>.
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const double dt = 0.25;
  const Circuit step = native_trotter_circuit(h, {2, dt / 2, 2});
  const auto diag = electric_energy_diagonal(h.space());
  const auto series = quench_series(step, diag, {1, 1}, NoiseModel(), 127);
  const double freq = dominant_frequency(series, dt);

  const EigResult er = eigh(h.dense());
  double best = 1e9;
  for (std::size_t i = 0; i < er.values.size(); ++i)
    for (std::size_t j = i + 1; j < er.values.size(); ++j)
      best = std::min(best, std::abs((er.values[j] - er.values[i]) - freq));
  EXPECT_LT(best, 0.08) << "frequency " << freq
                        << " matches no exact eigen-difference";
}

TEST(MassGap, NoiseDegradesExtraction) {
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const double dt = 0.25;
  const Circuit step = native_trotter_circuit(h, {2, dt / 2, 2});
  const auto diag = electric_energy_diagonal(h.space());

  auto noise_for = [](double scale) {
    NoiseParams p;
    p.depol_1q = 0.2 * scale;
    p.depol_2q = scale;
    return p;
  };
  const ThresholdScan scan = scan_noise_threshold(
      step, diag, {1, 1}, noise_for, {1e-4, 1e-3, 1e-2, 0.1}, 127, dt, 0.1);
  EXPECT_GT(scan.reference_frequency, 0.0);
  EXPECT_GT(scan.threshold, 1e-4);
  // Error should grow with noise scale overall.
  EXPECT_LT(scan.points.front().relative_error,
            scan.points.back().relative_error + 0.5);
}

TEST(MassGap, QuditThresholdExceedsQubitThreshold) {
  // The headline sQED claim (paper SS II-A): native qudit encodings
  // tolerate substantially higher error rates than binary encodings.
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const double dt = 0.25;
  const int samples = 127;
  const auto scales = std::vector<double>{3e-4, 1e-3, 3e-3, 1e-2, 3e-2};
  auto noise_for = [](double scale) {
    NoiseParams p;
    p.depol_1q = 0.1 * scale;
    p.depol_2q = scale;
    return p;
  };

  const Circuit step_n = native_trotter_circuit(h, {2, dt / 2, 2});
  const ThresholdScan scan_n = scan_noise_threshold(
      step_n, electric_energy_diagonal(h.space()), {1, 1}, noise_for, scales,
      samples, dt, 0.1);

  const Circuit step_b =
      binary_trotter_circuit(encode_binary(h), {2, dt / 2, 2});
  const ThresholdScan scan_b = scan_noise_threshold(
      step_b, electric_energy_diagonal_binary(h.space()), {1, 0, 1, 0},
      noise_for, scales, samples, dt, 0.1);

  EXPECT_GT(scan_n.threshold, scan_b.threshold);
}

}  // namespace
}  // namespace qs
