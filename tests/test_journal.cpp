#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace qs {
namespace obs {
namespace {

JournalEvent submitted_event(std::uint64_t t, std::uint64_t job) {
  JournalEvent e;
  e.time_ns = t;
  e.type = JournalEventType::kSubmitted;
  e.job = job;
  return e;
}

// ---------------------------------------------------------------------
// Serialization round-trips
// ---------------------------------------------------------------------

TEST(JournalEventTest, SerializeParseRoundTripAllFields) {
  JournalEvent e;
  e.time_ns = 123456789;
  e.type = JournalEventType::kSubmitted;
  e.job = 42;
  e.tenant = "qaoa";
  e.detail = "burst";
  e.seed = 0xdeadbeefull;
  e.epoch = 7;
  e.deadline_ns = 987654321;
  e.digest = 0x1234567890abcdefull;

  const JournalEvent back = JournalEvent::parse(e.serialize());
  EXPECT_EQ(back.time_ns, e.time_ns);
  EXPECT_EQ(back.type, e.type);
  EXPECT_EQ(back.job, e.job);
  EXPECT_EQ(back.tenant, e.tenant);
  EXPECT_EQ(back.detail, e.detail);
  EXPECT_EQ(back.seed, e.seed);
  EXPECT_EQ(back.epoch, e.epoch);
  EXPECT_EQ(back.deadline_ns, e.deadline_ns);
  EXPECT_EQ(back.digest, e.digest);
  // Round-trip must be a fixed point, not merely field-equal.
  EXPECT_EQ(back.serialize(), e.serialize());
}

TEST(JournalEventTest, SnapshotCountersRoundTrip) {
  JournalEvent e;
  e.time_ns = 5;
  e.type = JournalEventType::kSnapshot;
  e.counters.submitted = 100;
  e.counters.completed = 60;
  e.counters.failed = 2;
  e.counters.cancelled = 10;
  e.counters.expired = 3;
  e.counters.queued = 20;
  e.counters.running = 5;
  e.counters.recalibrations = 4;
  e.counters.stale_hits = 1;
  e.counters.results_stored = 55;
  e.counters.calib_epoch = 5;
  ASSERT_TRUE(e.counters.balanced());

  const JournalEvent back = JournalEvent::parse(e.serialize());
  EXPECT_EQ(back.type, JournalEventType::kSnapshot);
  EXPECT_EQ(back.counters.submitted, 100u);
  EXPECT_EQ(back.counters.completed, 60u);
  EXPECT_EQ(back.counters.queued, 20u);
  EXPECT_EQ(back.counters.calib_epoch, 5u);
  EXPECT_TRUE(back.counters.balanced());
  EXPECT_EQ(back.serialize(), e.serialize());
}

TEST(JournalEventTest, LabelsAreSanitized) {
  JournalEvent e;
  e.type = JournalEventType::kFailed;
  e.job = 1;
  e.detail = "bad value = nan\tseen";
  const std::string line = e.serialize();
  // The one-line key=value grammar survives hostile labels.
  EXPECT_EQ(line.find('\t'), std::string::npos);
  const JournalEvent back = JournalEvent::parse(line);
  EXPECT_EQ(back.detail, "bad_value___nan_seen");
}

TEST(JournalEventTest, ParseRejectsMalformedLines) {
  EXPECT_THROW(JournalEvent::parse("t=1 garbage job=2"), std::runtime_error);
  EXPECT_THROW(JournalEvent::parse("t=1 type=warp job=2"),
               std::runtime_error);
  EXPECT_THROW(JournalEvent::parse("t=abc type=submitted job=2"),
               std::runtime_error);
  EXPECT_THROW(JournalEvent::parse("t=1 job=2"), std::runtime_error);
  EXPECT_THROW(JournalEvent::parse("t=1 type=submitted color=red"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Canonical ordering
// ---------------------------------------------------------------------

TEST(JournalTest, ExportOrderIsIndependentOfRecordingOrder) {
  // The same event set recorded in two different interleavings must
  // export identical bytes -- the replay contract's foundation.
  std::vector<JournalEvent> set;
  for (std::uint64_t job = 1; job <= 4; ++job) {
    JournalEvent submit = submitted_event(10, job);
    submit.seed = job * 11;
    set.push_back(submit);
    JournalEvent dispatch = submitted_event(20, job);
    dispatch.type = JournalEventType::kDispatched;
    set.push_back(dispatch);
    JournalEvent done = submitted_event(20, job);
    done.type = JournalEventType::kCompleted;
    done.digest = job * 7;
    set.push_back(done);
  }

  Journal forward;
  for (const JournalEvent& e : set) forward.record(e);
  Journal reverse;
  for (auto it = set.rbegin(); it != set.rend(); ++it) reverse.record(*it);

  EXPECT_EQ(forward.str(), reverse.str());
}

TEST(JournalTest, LifecycleEdgesSortInMachineOrderWithinTimestamp) {
  Journal journal;
  JournalEvent done = submitted_event(50, 9);
  done.type = JournalEventType::kCompleted;
  journal.record(done);
  JournalEvent dispatch = submitted_event(50, 9);
  dispatch.type = JournalEventType::kDispatched;
  journal.record(dispatch);
  journal.record(submitted_event(50, 9));

  const std::vector<JournalEvent> events = journal.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, JournalEventType::kSubmitted);
  EXPECT_EQ(events[1].type, JournalEventType::kDispatched);
  EXPECT_EQ(events[2].type, JournalEventType::kCompleted);
}

TEST(JournalTest, SnapshotSortsAfterEveryEventAtItsCutTime) {
  // kSnapshot carries job=0; without the explicit is-snapshot rank it
  // would sort BEFORE same-timestamp job events and the prefix-replay
  // guarantee (snapshot counters == counts over the preceding events)
  // would break.
  Journal journal;
  JournalEvent cut;
  cut.time_ns = 30;
  cut.type = JournalEventType::kSnapshot;
  cut.counters.submitted = 1;
  cut.counters.completed = 1;
  journal.record(cut);

  JournalEvent pause;  // service-level, job=0, same timestamp
  pause.time_ns = 30;
  pause.type = JournalEventType::kPaused;
  journal.record(pause);

  JournalEvent done = submitted_event(30, 77);
  done.type = JournalEventType::kCompleted;
  journal.record(done);

  JournalEvent later = submitted_event(31, 78);
  journal.record(later);

  const std::vector<JournalEvent> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, JournalEventType::kPaused);
  EXPECT_EQ(events[1].type, JournalEventType::kCompleted);
  EXPECT_EQ(events[2].type, JournalEventType::kSnapshot);
  EXPECT_EQ(events[3].time_ns, 31u);
}

// ---------------------------------------------------------------------
// Headers and file round-trip
// ---------------------------------------------------------------------

TEST(JournalTest, HeaderSetGetAndOverwrite) {
  Journal journal;
  EXPECT_EQ(journal.header("spec"), "");
  journal.set_header("spec", "seed=1 ticks=2");
  journal.set_header("note", "first");
  EXPECT_EQ(journal.header("spec"), "seed=1 ticks=2");
  journal.set_header("note", "second");
  EXPECT_EQ(journal.header("note"), "second");
}

TEST(JournalTest, WriteReadRoundTrip) {
  Journal journal;
  journal.set_header("spec", "seed=3 ticks=4 with spaces = allowed");
  JournalEvent submit = submitted_event(1, 5);
  submit.tenant = "qrc";
  submit.seed = 99;
  journal.record(submit);
  JournalEvent done = submitted_event(2, 5);
  done.type = JournalEventType::kCompleted;
  done.digest = 1234;
  journal.record(done);

  std::istringstream is(journal.str());
  const Journal::Parsed parsed = Journal::read(is);
  EXPECT_EQ(parsed.header_value("spec"),
            "seed=3 ticks=4 with spaces = allowed");
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].tenant, "qrc");
  EXPECT_EQ(parsed.events[1].digest, 1234u);

  // Re-serializing the parsed journal reproduces the original bytes.
  Journal again;
  for (const auto& [k, v] : parsed.header) again.set_header(k, v);
  for (const JournalEvent& e : parsed.events) again.record(e);
  EXPECT_EQ(again.str(), journal.str());
}

TEST(JournalTest, ReadRejectsCorruptInput) {
  {
    std::istringstream is("NOTAJOURNAL\n");
    EXPECT_THROW(Journal::read(is), std::runtime_error);
  }
  {
    std::istringstream is("QSJ1\nE t=1 type=submitted job=1\n");
    EXPECT_THROW(Journal::read(is), std::runtime_error);  // no footer
  }
  {
    std::istringstream is("QSJ1\nE t=1 type=submitted job=1\nF count=2\n");
    EXPECT_THROW(Journal::read(is), std::runtime_error);  // count lies
  }
  {
    std::istringstream is("QSJ1\nX mystery line\nF count=0\n");
    EXPECT_THROW(Journal::read(is), std::runtime_error);
  }
  {
    std::istringstream is("QSJ1\nH malformed-header-no-equals\nF count=0\n");
    EXPECT_THROW(Journal::read(is), std::runtime_error);
  }
}

}  // namespace
}  // namespace obs
}  // namespace qs
