#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/state_vector_backend.h"
#include "obs/clock.h"
#include "obs/journal.h"
#include "serve/serve.h"
#include "sim/invariants.h"
#include "sim/scenario.h"
#include "sim/slo.h"
#include "sim/workload.h"

namespace qs {
namespace sim {
namespace {

obs::Journal::Parsed parse_str(const std::string& text) {
  std::istringstream is(text);
  return obs::Journal::read(is);
}

// ---------------------------------------------------------------------
// WorkloadSpec identity
// ---------------------------------------------------------------------

TEST(WorkloadSpecTest, SerializeParseRoundTrip) {
  WorkloadSpec spec = WorkloadSpec::standard(7, 40);
  spec.scale_to_jobs(1500);
  const std::string line = spec.serialize();
  const WorkloadSpec back = WorkloadSpec::parse(line);
  // Round-trip is a fixed point: max_digits10 doubles and explicit
  // schedules reproduce the exact line.
  EXPECT_EQ(back.serialize(), line);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.ticks, spec.ticks);
  EXPECT_EQ(back.tenants.size(), spec.tenants.size());
  EXPECT_THROW(WorkloadSpec::parse("seed=1 nonsense"), std::runtime_error);
}

TEST(WorkloadSpecTest, ScaleToJobsHitsTheTarget) {
  WorkloadSpec spec = WorkloadSpec::standard(3, 50);
  spec.scale_to_jobs(2000);
  const double expected =
      spec.expected_jobs_per_tick() * static_cast<double>(spec.ticks);
  EXPECT_NEAR(expected, 2000.0, 1.0);
}

// ---------------------------------------------------------------------
// The replay contract: journal bytes are worker-count invariant
// ---------------------------------------------------------------------

TEST(ScenarioTest, JournalIsBitwiseIdenticalAcrossWorkerCounts) {
  WorkloadSpec spec = WorkloadSpec::standard(5, 30);
  spec.scale_to_jobs(900);
  const StateVectorBackend backend;

  obs::Journal serial_journal;
  ScenarioOptions serial;
  serial.workers = 1;
  const ScenarioReport serial_report =
      run_scenario(backend, spec, serial_journal, serial);

  obs::Journal wide_journal;
  ScenarioOptions wide;
  wide.workers = 8;
  wide.max_batch = 4;  // different batching must not matter either
  const ScenarioReport wide_report =
      run_scenario(backend, spec, wide_journal, wide);

  EXPECT_TRUE(serial_report.accounted());
  EXPECT_EQ(serial_report.submitted, wide_report.submitted);
  EXPECT_EQ(serial_report.completed, wide_report.completed);
  EXPECT_GT(serial_report.submitted, 500u);
  EXPECT_GT(serial_report.cancelled, 0u);  // the flood did something
  EXPECT_EQ(serial_report.recalibrations, wide_report.recalibrations);

  const std::string serial_bytes = serial_journal.str();
  ASSERT_EQ(serial_bytes, wide_journal.str());

  // The recorded run is invariant-clean and SLO-analyzable.
  const obs::Journal::Parsed parsed = parse_str(serial_bytes);
  EXPECT_EQ(check_journal(parsed), std::vector<std::string>{});

  const std::map<std::string, TenantSlo> slo = compute_slo(parsed);
  ASSERT_TRUE(slo.count(""));
  EXPECT_EQ(slo.at("").submitted, serial_report.submitted);
  for (const TenantSpec& tenant : spec.tenants) {
    ASSERT_TRUE(slo.count(tenant.name)) << tenant.name;
    const TenantSlo& s = slo.at(tenant.name);
    EXPECT_GT(s.submitted, 0u) << tenant.name;
    EXPECT_GE(s.hit_rate(), 0.0);
    EXPECT_LE(s.hit_rate(), 1.0);
    if (s.completed > 0) {
      EXPECT_GE(s.p99_seconds, s.p50_seconds);
    }
  }
  // The tomography tenant runs 80% of its jobs with tight deadlines;
  // the pause window must have cost it at least one.
  EXPECT_GT(slo.at("tomo").with_deadline, 0u);
  EXPECT_FALSE(format_slo(slo).empty());
}

// ---------------------------------------------------------------------
// Invariant checker: negative coverage
// ---------------------------------------------------------------------

obs::JournalEvent event_at(std::uint64_t t, obs::JournalEventType type,
                           std::uint64_t job) {
  obs::JournalEvent e;
  e.time_ns = t;
  e.type = type;
  e.job = job;
  return e;
}

TEST(InvariantCheckerTest, FlagsIllegalLifecycles) {
  using obs::JournalEventType;
  {
    obs::Journal::Parsed bad;  // double dispatch
    bad.events.push_back(event_at(1, JournalEventType::kSubmitted, 1));
    bad.events.push_back(event_at(2, JournalEventType::kDispatched, 1));
    bad.events.push_back(event_at(3, JournalEventType::kDispatched, 1));
    bad.events.push_back(event_at(4, JournalEventType::kCompleted, 1));
    EXPECT_FALSE(check_journal(bad).empty());
  }
  {
    obs::Journal::Parsed bad;  // resurrection after a terminal state
    bad.events.push_back(event_at(1, JournalEventType::kSubmitted, 1));
    bad.events.push_back(event_at(2, JournalEventType::kCancelled, 1));
    bad.events.push_back(event_at(3, JournalEventType::kDispatched, 1));
    EXPECT_FALSE(check_journal(bad).empty());
  }
  {
    obs::Journal::Parsed bad;  // dispatched past its deadline
    obs::JournalEvent submit = event_at(1, JournalEventType::kSubmitted, 1);
    submit.deadline_ns = 100;
    bad.events.push_back(submit);
    bad.events.push_back(event_at(200, JournalEventType::kDispatched, 1));
    bad.events.push_back(event_at(201, JournalEventType::kCompleted, 1));
    EXPECT_FALSE(check_journal(bad).empty());
  }
  {
    obs::Journal::Parsed bad;  // snapshot counters contradict events
    bad.events.push_back(event_at(1, JournalEventType::kSubmitted, 1));
    bad.events.push_back(event_at(2, JournalEventType::kCompleted, 1));
    obs::JournalEvent cut = event_at(3, JournalEventType::kSnapshot, 0);
    cut.counters.submitted = 2;  // events say 1
    cut.counters.completed = 2;
    EXPECT_TRUE(cut.counters.balanced());
    bad.events.push_back(cut);
    EXPECT_FALSE(check_journal(bad).empty());
  }
  {
    obs::Journal::Parsed bad;  // calibration epoch must be strictly
    obs::JournalEvent a = event_at(1, JournalEventType::kRecalibrated, 0);
    a.epoch = 2;  // monotone
    obs::JournalEvent b = event_at(2, JournalEventType::kRecalibrated, 0);
    b.epoch = 2;
    bad.events.push_back(a);
    bad.events.push_back(b);
    EXPECT_FALSE(check_journal(bad).empty());
  }
  {
    obs::Journal::Parsed open;  // non-terminal job: only `complete` flags
    open.events.push_back(event_at(1, JournalEventType::kSubmitted, 1));
    EXPECT_FALSE(check_journal(open, /*complete=*/true).empty());
    EXPECT_TRUE(check_journal(open, /*complete=*/false).empty());
  }
}

// ---------------------------------------------------------------------
// Satellite races: cancel-vs-dispatch, deadline across pause/resume
// ---------------------------------------------------------------------

TEST(ScenarioRaceTest, ConcurrentCancelsProduceALegalJournal) {
  // Fire cancels at a LIVE dispatching service (no pause shield, unlike
  // the scenario engine): whichever way each race lands -- cancelled
  // before dispatch or completed despite the cancel attempt -- the
  // journal must describe a legal lifecycle with no job both cancelled
  // and dispatched.
  const StateVectorBackend backend;
  obs::ManualClock clock(0);
  obs::Journal journal;
  ServiceOptions options;
  options.workers = 4;
  options.max_batch = 4;
  options.clock = &clock;
  options.journal = &journal;
  JobService service(backend, options);

  TenantSpec tenant;
  tenant.name = "racer";
  tenant.kind = JobKind::kQrc;
  tenant.shots = 8;
  tenant.variants = 4;

  constexpr int kJobs = 200;
  std::vector<JobHandle> handles;
  handles.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i)
    handles.push_back(service.submit(make_job(tenant, i % 4)));

  std::atomic<int> cancelled_now{0};
  std::thread canceller([&] {
    for (int i = 0; i < kJobs; i += 2)
      if (handles[i].cancel()) cancelled_now.fetch_add(1);
  });
  canceller.join();
  for (const JobHandle& handle : handles) handle.wait();
  service.shutdown(ShutdownMode::kDrain);

  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(t.cancelled, static_cast<std::uint64_t>(cancelled_now.load()));
  EXPECT_EQ(t.completed + t.cancelled, static_cast<std::uint64_t>(kJobs));

  const obs::Journal::Parsed parsed = parse_str(journal.str());
  EXPECT_EQ(check_journal(parsed), std::vector<std::string>{});
}

TEST(ScenarioRaceTest, DeadlinesExpireAcrossPauseResumeOnVirtualTime) {
  const StateVectorBackend backend;
  obs::ManualClock clock(0);
  obs::Journal journal;
  ServiceOptions options;
  options.workers = 2;
  options.start_paused = true;
  options.clock = &clock;
  options.journal = &journal;
  JobService service(backend, options);

  TenantSpec tenant;
  tenant.name = "dl";
  tenant.kind = JobKind::kTomo;
  tenant.shots = 8;

  // Pause window 1: the 1 s deadline ages past while paused -> expired
  // at the resume edge; the deadline-free sibling still completes.
  JobHandle doomed = service.submit(make_job(tenant, 0).with_deadline(1.0));
  JobHandle safe = service.submit(make_job(tenant, 1));
  clock.advance_seconds(2.0);
  service.resume();
  EXPECT_EQ(doomed.wait().status, JobStatus::kExpired);
  EXPECT_EQ(safe.wait().status, JobStatus::kDone);

  // Pause window 2: the clock advances LESS than the deadline, so the
  // job survives the window and dispatches in time.
  service.pause();
  JobHandle survivor = service.submit(make_job(tenant, 2).with_deadline(5.0));
  clock.advance_seconds(2.0);
  service.resume();
  EXPECT_EQ(survivor.wait().status, JobStatus::kDone);

  service.shutdown(ShutdownMode::kDrain);
  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.expired, 1u);
  EXPECT_EQ(t.completed, 2u);

  // The journal agrees: the expiry is stamped at (or after) the virtual
  // deadline, and the whole record replays as a legal lifecycle set.
  const obs::Journal::Parsed parsed = parse_str(journal.str());
  EXPECT_EQ(check_journal(parsed), std::vector<std::string>{});
  bool saw_expiry = false;
  for (const obs::JournalEvent& e : parsed.events) {
    if (e.type != obs::JournalEventType::kExpired) continue;
    saw_expiry = true;
    EXPECT_EQ(e.job, doomed.id());
  }
  EXPECT_TRUE(saw_expiry);
  const std::map<std::string, TenantSlo> slo = compute_slo(parsed);
  ASSERT_TRUE(slo.count("dl"));
  EXPECT_EQ(slo.at("dl").with_deadline, 2u);
  EXPECT_EQ(slo.at("dl").deadline_hits, 1u);
  EXPECT_DOUBLE_EQ(slo.at("dl").hit_rate(), 0.5);
}

}  // namespace
}  // namespace sim
}  // namespace qs
