// Tests for the extension modules: state preparation, measurement
// mitigation, and the transmon-probe analog reservoir.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/state_vector_backend.h"
#include "test_support.h"
#include "circuit/state_prep.h"
#include "common/rng.h"
#include "common/stats.h"
#include "gates/qudit_gates.h"
#include "linalg/metrics.h"
#include "noise/channels.h"
#include "noise/mitigation.h"
#include "qrc/readout.h"
#include "qrc/transmon_probe.h"

namespace qs {
namespace {

using test_support::final_state;

// ---------------------------------------------------------------------
// State preparation.
// ---------------------------------------------------------------------

class GhzP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GhzP, ProducesGhzState) {
  const auto [sites, d] = GetParam();
  const Circuit c = ghz_circuit(sites, d);
  const StateVector psi = final_state(c);
  const double expect = 1.0 / std::sqrt(static_cast<double>(d));
  for (int k = 0; k < d; ++k) {
    std::vector<int> digits(static_cast<std::size_t>(sites), k);
    EXPECT_NEAR(std::abs(psi.amplitude(c.space().index_of(digits))), expect,
                1e-10)
        << "k=" << k;
  }
  // No weight outside the diagonal strings.
  double diag_weight = 0.0;
  for (int k = 0; k < d; ++k) {
    std::vector<int> digits(static_cast<std::size_t>(sites), k);
    diag_weight += std::norm(psi.amplitude(c.space().index_of(digits)));
  }
  EXPECT_NEAR(diag_weight, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GhzP,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(4, 3),
                                           std::make_tuple(2, 5)));

class WStateP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WStateP, ProducesWState) {
  const auto [sites, d] = GetParam();
  const Circuit c = w_circuit(sites, d);
  const StateVector psi = final_state(c);
  const double expect = 1.0 / std::sqrt(static_cast<double>(sites));
  for (int i = 0; i < sites; ++i) {
    std::vector<int> digits(static_cast<std::size_t>(sites), 0);
    digits[static_cast<std::size_t>(i)] = 1;
    EXPECT_NEAR(std::abs(psi.amplitude(c.space().index_of(digits))), expect,
                1e-9)
        << "site " << i;
  }
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WStateP,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(5, 3),
                                           std::make_tuple(4, 4)));

TEST(StatePrep, UniformSuperposition) {
  Circuit c(QuditSpace({3, 4}));
  append_uniform_superposition(c);
  const StateVector psi = final_state(c);
  for (std::size_t i = 0; i < psi.dimension(); ++i)
    EXPECT_NEAR(std::abs(psi.amplitude(i)), 1.0 / std::sqrt(12.0), 1e-10);
}

// ---------------------------------------------------------------------
// Measurement mitigation.
// ---------------------------------------------------------------------

TEST(Mitigation, RecoversTrueDistribution) {
  const auto m = adjacent_confusion_matrix(4, 0.2);
  const std::vector<double> truth{0.5, 0.1, 0.3, 0.1};
  const auto observed = apply_confusion(m, truth);
  const auto recovered = mitigate_readout(m, observed);
  for (std::size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(recovered[i], truth[i], 1e-8);
}

TEST(Mitigation, PreservesTotalCounts) {
  const auto m = adjacent_confusion_matrix(3, 0.15);
  const std::vector<double> observed{120.0, 60.0, 20.0};
  const auto recovered = mitigate_readout(m, observed);
  double total = 0.0;
  for (double v : recovered) total += v;
  EXPECT_NEAR(total, 200.0, 1e-8);
  for (double v : recovered) EXPECT_GE(v, 0.0);
}

TEST(Mitigation, ClipsQuasiProbabilities) {
  // Heavily corrupted counts can invert to negative quasi-probabilities;
  // the mitigator must clip and renormalize.
  const auto m = adjacent_confusion_matrix(2, 0.4);
  const std::vector<double> observed{1.0, 99.0};
  const auto recovered = mitigate_readout(m, observed);
  EXPECT_GE(recovered[0], 0.0);
  EXPECT_GE(recovered[1], 0.0);
  EXPECT_NEAR(recovered[0] + recovered[1], 100.0, 1e-8);
}

TEST(Mitigation, RegisterMatrixIsTensorProduct) {
  const auto site = adjacent_confusion_matrix(2, 0.1);
  const auto reg = register_confusion_matrix(site, 2);
  ASSERT_EQ(reg.size(), 4u);
  // Entry (0, 3): both sites leak: site[0][1]^2.
  EXPECT_NEAR(reg[0][3], site[0][1] * site[0][1], 1e-12);
  // Columns sum to 1 (stochastic).
  for (std::size_t j = 0; j < 4; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 4; ++i) col += reg[i][j];
    EXPECT_NEAR(col, 1.0, 1e-12);
  }
}

TEST(Mitigation, EndToEndWithSampledCounts) {
  // Simulate readout corruption of a known distribution with sampling
  // noise and verify mitigation improves the total-variation distance.
  Rng rng(55);
  const auto m = adjacent_confusion_matrix(3, 0.25);
  const std::vector<double> truth{0.6, 0.3, 0.1};
  const auto corrupted = apply_confusion(m, truth);
  // Multinomial sample of the corrupted distribution.
  std::vector<double> counts(3, 0.0);
  const int shots = 20000;
  for (int s = 0; s < shots; ++s) ++counts[rng.discrete(corrupted)];
  const auto mitigated = mitigate_readout(m, counts);
  double tv_raw = 0.0, tv_mit = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    tv_raw += std::abs(counts[i] / shots - truth[i]);
    tv_mit += std::abs(mitigated[i] / shots - truth[i]);
  }
  EXPECT_LT(tv_mit, tv_raw);
}

// ---------------------------------------------------------------------
// Transmon-probe analog reservoir.
// ---------------------------------------------------------------------

TransmonProbeConfig probe_config() {
  TransmonProbeConfig cfg;
  cfg.cavity_levels = 6;
  cfg.probes_per_step = 3;
  cfg.ensemble = 16;
  return cfg;
}

TEST(TransmonProbe, FeatureShape) {
  const TransmonProbeReservoir res(probe_config());
  Rng rng(60);
  const RMatrix f = res.run({0.2, -0.4, 0.7}, rng);
  EXPECT_EQ(f.rows(), 3u);
  EXPECT_EQ(f.cols(), 3u);
  for (std::size_t r = 0; r < f.rows(); ++r)
    for (std::size_t c = 0; c < f.cols(); ++c) {
      EXPECT_GE(f(r, c), 0.0);
      EXPECT_LE(f(r, c), 1.0);
    }
}

TEST(TransmonProbe, DeterministicGivenSeed) {
  const TransmonProbeReservoir res(probe_config());
  Rng r1(61), r2(61);
  const RMatrix a = res.run({0.5, 0.1}, r1);
  const RMatrix b = res.run({0.5, 0.1}, r2);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
}

TEST(TransmonProbe, RespondsToInput) {
  const TransmonProbeReservoir res(probe_config());
  Rng r1(62), r2(62);
  const RMatrix quiet = res.run(std::vector<double>(8, 0.0), r1);
  const RMatrix driven = res.run(std::vector<double>(8, 1.0), r2);
  double diff = 0.0;
  for (std::size_t r = 0; r < quiet.rows(); ++r)
    for (std::size_t c = 0; c < quiet.cols(); ++c)
      diff += std::abs(quiet(r, c) - driven(r, c));
  EXPECT_GT(diff, 0.05);
}

TEST(TransmonProbe, TwoToneTaskLabels) {
  Rng rng(63);
  const SignalTask task = make_two_tone_task(6, 10, 0.4, 1.3, rng);
  EXPECT_EQ(task.input.size(), 60u);
  for (double l : task.target) EXPECT_TRUE(l == 1.0 || l == -1.0);
  EXPECT_GT(stddev(task.input), 0.1);
}

TEST(TransmonProbe, ClassifiesTwoTones) {
  // The [27]-style experiment: distinguish two signal classes from a
  // window of the transmon measurement record with a linear readout.
  // Weak-measurement regime (strong frequent probes would Zeno-freeze
  // the cavity response); a large measurement ensemble is needed, which
  // is exactly the paper's shot-noise challenge.
  Rng rng(31);
  const SignalTask task = make_two_tone_task(28, 8, 0.35, 1.25, rng);
  TransmonProbeConfig cfg = probe_config();
  cfg.probes_per_step = 1;
  cfg.probe_time = 1.8;
  cfg.chi = 0.6;
  cfg.omega_c = 0.6;
  cfg.input_gain = 0.7;
  cfg.ensemble = 512;
  const TransmonProbeReservoir res(cfg);
  Rng run_rng(100);
  const RMatrix features = stack_history(res.run(task.input, run_rng), 12);
  const double acc =
      evaluate_sign_accuracy(features, task.target, 12, 148, 1e-4);
  EXPECT_GT(acc, 0.65);
}

TEST(TransmonProbe, StackHistoryShapesAndClamping) {
  RMatrix f(3, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      f(r, c) = static_cast<double>(10 * r + c);
  const RMatrix s = stack_history(f, 2);
  EXPECT_EQ(s.cols(), 4u);
  EXPECT_DOUBLE_EQ(s(2, 0), 20.0);  // current row
  EXPECT_DOUBLE_EQ(s(2, 2), 10.0);  // previous row
  EXPECT_DOUBLE_EQ(s(0, 2), 0.0);   // clamped at the start
}

}  // namespace
}  // namespace qs
