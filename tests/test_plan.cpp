// Equivalence suite for the compiled execution layer (exec/plan.h).
//
// The contract under test: a CompiledCircuit lowered with
// PlanOptions::none() performs the same arithmetic in the same order as
// the gate-by-gate seed path -- amplitudes, probabilities, counts, and RNG
// stream consumption all agree exactly (EXPECT_EQ, not EXPECT_NEAR) -- on
// randomized mixed-radix spaces (d = 2..5) across all three backends,
// including noisy trajectories under fixed seeds. Fused plans reassociate
// floating-point products and agree to tolerance instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "exec/exec.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/expm.h"
#include "noise/noise_model.h"
#include "qudit/kernels.h"

namespace qs {
namespace {

/// Mixed-radix space with 3-5 sites of local dimension 2..5.
QuditSpace random_space(Rng& rng) {
  const int sites = rng.integer(3, 5);
  std::vector<int> dims;
  for (int s = 0; s < sites; ++s) dims.push_back(rng.integer(2, 5));
  return QuditSpace(dims);
}

std::vector<cplx> random_phase_diag(std::size_t n, Rng& rng) {
  std::vector<cplx> diag(n);
  for (std::size_t i = 0; i < n; ++i)
    diag[i] = std::exp(cplx{0.0, rng.uniform(0.0, 6.28)});
  return diag;
}

/// Random circuit mixing dense 1-site and 2-site gates, diagonals, and a
/// CSUM (monomial) gate; with_repeats appends adjacent same-site pairs so
/// fusion has something to do.
Circuit random_circuit(const QuditSpace& space, Rng& rng, int gates,
                       bool with_repeats) {
  Circuit c(space);
  const int n = static_cast<int>(space.num_sites());
  for (int g = 0; g < gates; ++g) {
    const int s = rng.integer(0, n - 1);
    const int d = space.dim(static_cast<std::size_t>(s));
    switch (rng.integer(0, 3)) {
      case 0:
        c.add("U1", random_unitary(d, rng), {s});
        break;
      case 1: {
        const int t = (s + 1) % n;
        const int dt = space.dim(static_cast<std::size_t>(t));
        c.add("U2", random_unitary(d * dt, rng), {s, t});
        break;
      }
      case 2:
        c.add_diagonal("P", random_phase_diag(static_cast<std::size_t>(d),
                                              rng),
                       {s});
        break;
      default: {
        const int t = (s + 1) % n;
        const int dt = space.dim(static_cast<std::size_t>(t));
        // csum needs control dim <= target dim; orient accordingly.
        if (d <= dt)
          c.add("CSUM", csum(d, dt), {s, t});
        else
          c.add("CSUM", csum(dt, d), {t, s});
        break;
      }
    }
    if (with_repeats && rng.bernoulli(0.4)) {
      // Same-site follow-up of the same kind: a fusion candidate.
      const Operation& prev = c.operations().back();
      if (prev.diagonal)
        c.add_diagonal("P'",
                       random_phase_diag(prev.diag.size(), rng), prev.sites);
      else
        c.add("U'", random_unitary(static_cast<int>(prev.matrix.rows()), rng),
              prev.sites);
    }
  }
  return c;
}

NoiseModel mixed_noise() {
  NoiseParams p;
  p.depol_1q = 0.004;
  p.depol_2q = 0.008;
  p.dephase_1q = 0.002;
  p.loss_per_gate = 0.003;
  return NoiseModel(p);
}

void expect_amplitudes_eq(const StateVector& a, const StateVector& b) {
  ASSERT_EQ(a.dimension(), b.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i)
    EXPECT_EQ(a.amplitude(i), b.amplitude(i)) << "amplitude " << i;
}

// ---------------------------------------------------------------------
// Compiled == gate-by-gate, exact.
// ---------------------------------------------------------------------

TEST(CompiledCircuit, UnfusedMatchesGateByGateExactly) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(1000 + trial);
    const QuditSpace space = random_space(rng);
    const Circuit c = random_circuit(space, rng, 12, false);

    StateVector reference(space);
    StateVectorBackend::apply(c, reference);

    const CompiledCircuit plan(c, NoiseModel(), PlanOptions::none());
    EXPECT_EQ(plan.source_operations(), c.size());
    EXPECT_EQ(plan.steps().size(), c.size());
    StateVector compiled(space);
    kernels::Scratch scratch;
    plan.run_pure(compiled, scratch);

    expect_amplitudes_eq(reference, compiled);
  }
}

TEST(CompiledCircuit, FusedAgreesToToleranceAndActuallyFuses) {
  std::size_t total_fused = 0;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(2000 + trial);
    const QuditSpace space = random_space(rng);
    const Circuit c = random_circuit(space, rng, 10, true);

    StateVector reference(space);
    StateVectorBackend::apply(c, reference);

    const CompiledCircuit plan(c, NoiseModel(), PlanOptions{});
    total_fused += plan.fused_operations();
    EXPECT_EQ(plan.source_operations(),
              plan.steps().size() + plan.fused_operations());
    StateVector compiled(space);
    kernels::Scratch scratch;
    plan.run_pure(compiled, scratch);

    for (std::size_t i = 0; i < reference.dimension(); ++i) {
      EXPECT_NEAR(reference.amplitude(i).real(), compiled.amplitude(i).real(),
                  1e-12);
      EXPECT_NEAR(reference.amplitude(i).imag(), compiled.amplitude(i).imag(),
                  1e-12);
    }
  }
  // With 40% same-site repeats over 8 trials something must have fused.
  EXPECT_GT(total_fused, 0u);
}

TEST(CompiledCircuit, NoisyTrajectoryMatchesSeedPathExactly) {
  const NoiseModel noise = mixed_noise();
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(3000 + trial);
    const QuditSpace space = random_space(rng);
    const Circuit c = random_circuit(space, rng, 8, false);

    Rng ref_rng(42 + trial);
    StateVector reference(space);
    TrajectoryBackend::apply(c, reference, noise, ref_rng);

    const CompiledCircuit plan(c, noise, PlanOptions::none());
    EXPECT_TRUE(plan.noisy());
    Rng compiled_rng(42 + trial);
    StateVector compiled(space);
    kernels::Scratch scratch;
    plan.run_trajectory(compiled, compiled_rng, scratch);

    expect_amplitudes_eq(reference, compiled);
    // Both paths must have consumed the identical RNG stream.
    EXPECT_EQ(ref_rng.draw_seed(), compiled_rng.draw_seed());
  }
}

TEST(CompiledCircuit, DensityMatrixPathMatchesGateByGateExactly) {
  const NoiseModel noise = mixed_noise();
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    Rng rng(4000 + trial);
    QuditSpace space({2, 3, 4});  // keep dim^2 cheap
    const Circuit c = random_circuit(space, rng, 6, false);

    DensityMatrix reference(space);
    DensityMatrixBackend::apply(c, reference, noise);

    const CompiledCircuit plan(c, noise, PlanOptions::none());
    DensityMatrix compiled(space);
    kernels::Scratch scratch;
    plan.run_density(compiled, scratch);

    for (std::size_t r = 0; r < reference.dimension(); ++r)
      for (std::size_t col = 0; col < reference.dimension(); ++col)
        EXPECT_EQ(reference.matrix()(r, col), compiled.matrix()(r, col))
            << "entry (" << r << ", " << col << ")";
  }
}

// ---------------------------------------------------------------------
// Parametric plans: bind() == compile-the-bound-circuit, bitwise.
// ---------------------------------------------------------------------

/// Random parametric circuit: the random_circuit gate mix interleaved
/// with dense rotation families exp(-i angle H) and diagonal phase
/// families, plus same-site dense follow-ups so fusion chains cross
/// parametric operations. Every parameter index 0..num_params-1 is used.
Circuit random_parametric_circuit(const QuditSpace& space, Rng& rng,
                                  int gates, int num_params) {
  Circuit c(space);
  const int n = static_cast<int>(space.num_sites());
  std::uint64_t tag = 0xfeed0000 + 1000 * rng.integer(1, 9);
  int added_params = 0;
  for (int g = 0; g < gates; ++g) {
    const int s = rng.integer(0, n - 1);
    const int d = space.dim(static_cast<std::size_t>(s));
    if (g % 2 == 1) {  // alternate plain / parametric
      // Cycle through the slots so index num_params-1 is always used.
      const ParamExpr expr{added_params % num_params,
                           rng.uniform(0.5, 2.0), rng.uniform(-0.5, 0.5)};
      ++added_params;
      if (rng.bernoulli(0.5)) {
        const Matrix u = random_unitary(d, rng);
        const Matrix h = u + u.adjoint();  // hermitian generator
        c.add_parametric(
            "ROT",
            make_dense_generator(++tag,
                                 [h](double angle) {
                                   return expm_hermitian(h,
                                                         cplx{0.0, -angle});
                                 }),
            expr, {s});
      } else {
        c.add_parametric(
            "PH",
            make_diagonal_generator(++tag,
                                    [d](double angle) {
                                      std::vector<cplx> diag(
                                          static_cast<std::size_t>(d));
                                      for (int k = 0; k < d; ++k)
                                        diag[static_cast<std::size_t>(k)] =
                                            std::exp(cplx{0.0, angle * k});
                                      return diag;
                                    }),
            expr, {s});
      }
      if (rng.bernoulli(0.5)) {
        // Same-site dense follow-up: fuses into the parametric chain.
        c.add("U'", random_unitary(d, rng), {s});
      }
    } else {
      switch (rng.integer(0, 2)) {
        case 0:
          c.add("U1", random_unitary(d, rng), {s});
          break;
        case 1:
          c.add_diagonal("P",
                         random_phase_diag(static_cast<std::size_t>(d), rng),
                         {s});
          break;
        default: {
          const int t = (s + 1) % n;
          const int dt = space.dim(static_cast<std::size_t>(t));
          c.add("U2", random_unitary(d * dt, rng), {s, t});
          break;
        }
      }
    }
  }
  return c;
}

std::vector<double> random_binding(std::size_t count, Rng& rng) {
  std::vector<double> params(count);
  for (double& p : params) p = rng.uniform(-3.0, 3.0);
  return params;
}

TEST(ParametricPlan, BindMatchesCompilingBoundCircuitBitwise) {
  // The parametric correctness contract: plan(symbolic).bind(p) performs
  // the same arithmetic in the same order as plan(symbolic.bind(p)) --
  // amplitudes agree with EXPECT_EQ, fused or not, on random mixed-radix
  // circuits.
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(11000 + trial);
    const QuditSpace space = random_space(rng);
    const Circuit symbolic =
        random_parametric_circuit(space, rng, 10, 2);
    const std::vector<double> params = random_binding(2, rng);

    for (const bool fuse : {false, true}) {
      const PlanOptions options = fuse ? PlanOptions{} : PlanOptions::none();
      const CompiledCircuit plan(symbolic, NoiseModel(), options);
      ASSERT_TRUE(plan.parametric());
      EXPECT_EQ(plan.num_parameters(), 2u);
      const auto bound = plan.bind(params);
      EXPECT_EQ(bound->bound_parameters(), params);
      EXPECT_EQ(bound->steps().size(), plan.steps().size());

      const CompiledCircuit rebuilt(symbolic.bind(params), NoiseModel(),
                                    options);
      ASSERT_EQ(bound->steps().size(), rebuilt.steps().size());
      StateVector via_bind(space);
      StateVector via_rebuild(space);
      kernels::Scratch scratch;
      bound->run_pure(via_bind, scratch);
      rebuilt.run_pure(via_rebuild, scratch);
      expect_amplitudes_eq(via_rebuild, via_bind);
    }
  }
}

TEST(ParametricPlan, NoisyTrajectoryBindMatchesRebuildExactly) {
  // Channel resolution reads only structure (sites, duration,
  // multiplicity), so the bound plan consumes the identical RNG stream
  // and lands on bitwise the same trajectory.
  const NoiseModel noise = mixed_noise();
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    Rng rng(12000 + trial);
    const QuditSpace space = random_space(rng);
    const Circuit symbolic = random_parametric_circuit(space, rng, 8, 3);
    const std::vector<double> params = random_binding(3, rng);

    const CompiledCircuit plan(symbolic, noise, PlanOptions::none());
    const auto bound = plan.bind(params);
    const CompiledCircuit rebuilt(symbolic.bind(params), noise,
                                  PlanOptions::none());

    Rng bind_rng(500 + trial), rebuild_rng(500 + trial);
    StateVector via_bind(space);
    StateVector via_rebuild(space);
    kernels::Scratch scratch;
    bound->run_trajectory(via_bind, bind_rng, scratch);
    rebuilt.run_trajectory(via_rebuild, rebuild_rng, scratch);
    expect_amplitudes_eq(via_rebuild, via_bind);
    EXPECT_EQ(bind_rng.draw_seed(), rebuild_rng.draw_seed());
  }
}

TEST(ParametricPlan, RebindRecipesAreValueIndependent) {
  // Any cached plan binds correctly no matter which binding populated
  // it: bind(p2) from a plan compiled at p1 equals compiling at p2.
  Rng rng(13000);
  const QuditSpace space = random_space(rng);
  const Circuit symbolic = random_parametric_circuit(space, rng, 10, 2);
  const std::vector<double> p1 = random_binding(2, rng);
  const std::vector<double> p2 = random_binding(2, rng);

  const CompiledCircuit from_p1(symbolic.bind(p1), NoiseModel(),
                                PlanOptions{});
  const auto rebound = from_p1.bind(p2);
  const CompiledCircuit fresh(symbolic.bind(p2), NoiseModel(), PlanOptions{});
  StateVector a(space), b(space);
  kernels::Scratch scratch;
  rebound->run_pure(a, scratch);
  fresh.run_pure(b, scratch);
  expect_amplitudes_eq(b, a);
}

TEST(ParametricPlanCache, StructuralKeySharesPlansAcrossBindings) {
  Rng rng(14000);
  const QuditSpace space = random_space(rng);
  const Circuit symbolic = random_parametric_circuit(space, rng, 8, 2);
  const std::vector<double> p1 = random_binding(2, rng);
  const std::vector<double> p2 = random_binding(2, rng);

  PlanCache cache(8);
  const auto plan1 =
      cache.get_or_compile(symbolic.bind(p1), NoiseModel(), PlanOptions{});
  const auto plan2 =
      cache.get_or_compile(symbolic.bind(p2), NoiseModel(), PlanOptions{});
  const auto plan3 =
      cache.get_or_compile(symbolic, NoiseModel(), PlanOptions{});
  EXPECT_EQ(plan1, plan2);  // one structural key, one artifact
  EXPECT_EQ(plan1, plan3);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CompiledExecution, TrajectoryBackendMatchesHandRolledReference) {
  Rng rng(5001);
  const QuditSpace space = random_space(rng);
  const Circuit c = random_circuit(space, rng, 8, false);
  const NoiseModel noise = mixed_noise();
  const std::uint64_t seed = 909;

  // <= 16 trajectories keeps the backend in a single reduction block, so
  // the reference's flat accumulation matches the block-ordered one.
  const std::size_t total = 12;
  std::vector<double> ref_probs(space.dimension(), 0.0);
  for (std::size_t t = 0; t < total; ++t) {
    Rng traj_rng(split_seed(seed, t));
    StateVector psi(space);
    TrajectoryBackend::apply(c, psi, noise, traj_rng);
    for (std::size_t i = 0; i < space.dimension(); ++i)
      ref_probs[i] += std::norm(psi.amplitude(i));
  }
  for (double& p : ref_probs) p /= static_cast<double>(total);

  const TrajectoryBackend backend{noise};
  ExecutionRequest request(c);
  request.trajectories = total;
  request.seed = seed;
  request.plan = std::make_shared<const CompiledCircuit>(c, noise,
                                                         PlanOptions::none());
  const ExecutionResult result = backend.execute(request);
  ASSERT_EQ(result.probabilities.size(), ref_probs.size());
  for (std::size_t i = 0; i < ref_probs.size(); ++i)
    EXPECT_EQ(result.probabilities[i], ref_probs[i]) << "index " << i;

  // Counts path: every shot is one trajectory plus one readout draw.
  std::vector<std::size_t> ref_counts(space.dimension(), 0);
  const std::size_t shots = 16;
  for (std::size_t t = 0; t < shots; ++t) {
    Rng traj_rng(split_seed(seed, t));
    StateVector psi(space);
    TrajectoryBackend::apply(c, psi, noise, traj_rng);
    ++ref_counts[psi.sample_index(traj_rng)];
  }
  ExecutionRequest counts_request(c);
  counts_request.shots = shots;
  counts_request.seed = seed;
  counts_request.plan = request.plan;
  EXPECT_EQ(backend.execute(counts_request).counts, ref_counts);
}

TEST(CompiledExecution, AllBackendsAgreeOnRandomCircuits) {
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    Rng rng(6000 + trial);
    QuditSpace space({3, 2, 4});
    const Circuit c = random_circuit(space, rng, 8, true);
    const auto p_sv = StateVectorBackend().run_state(c);
    const auto p_dm = DensityMatrixBackend().run_state(c);
    const auto p_traj = TrajectoryBackend{NoiseModel()}.run_state(c);
    for (std::size_t i = 0; i < p_sv.size(); ++i) {
      EXPECT_NEAR(p_sv[i], p_dm[i], 1e-12);
      EXPECT_NEAR(p_sv[i], p_traj[i], 1e-12);
    }
  }
}

// ---------------------------------------------------------------------
// Session plan cache.
// ---------------------------------------------------------------------

TEST(PlanCache, SessionReusesPlansAndResultsAreIdentical) {
  Rng rng(7001);
  const QuditSpace space = random_space(rng);
  const Circuit c = random_circuit(space, rng, 8, false);
  const TrajectoryBackend backend{mixed_noise()};

  ExecutionSession session(backend);
  auto make_request = [&] {
    ExecutionRequest r(c);
    r.shots = 64;
    r.seed = 1234;
    return r;
  };
  const ExecutionResult first = session.submit(make_request());
  EXPECT_EQ(session.plan_cache().misses(), 1u);
  EXPECT_EQ(session.plan_cache().hits(), 0u);
  const ExecutionResult second = session.submit(make_request());
  EXPECT_EQ(session.plan_cache().misses(), 1u);
  EXPECT_EQ(session.plan_cache().hits(), 1u);
  EXPECT_EQ(first.counts, second.counts);
  ASSERT_EQ(first.probabilities.size(), second.probabilities.size());
  for (std::size_t i = 0; i < first.probabilities.size(); ++i)
    EXPECT_EQ(first.probabilities[i], second.probabilities[i]);

  // Session-cached execution == direct backend execution (same default
  // lowering, same seed).
  const ExecutionResult direct = backend.execute(make_request());
  EXPECT_EQ(first.counts, direct.counts);

  // A batch of the same circuit compiles nothing new.
  std::vector<ExecutionRequest> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(make_request());
  session.submit_batch(std::move(batch));
  EXPECT_EQ(session.plan_cache().misses(), 1u);
  EXPECT_EQ(session.plan_cache().hits(), 7u);
}

TEST(PlanCache, DistinguishesCircuitsNoiseAndOptions) {
  Rng rng(7500);
  const QuditSpace space(std::vector<int>{3, 3});
  Circuit a(space);
  a.add("F", fourier(3), {0});
  Circuit b(space);
  b.add("F", fourier(3), {1});  // same gate, different site

  EXPECT_NE(fingerprint(a), fingerprint(b));
  Circuit a2(space);
  a2.add("F", fourier(3), {0});
  EXPECT_EQ(fingerprint(a), fingerprint(a2));
  EXPECT_NE(fingerprint(NoiseModel()), fingerprint(mixed_noise()));

  PlanCache cache(8);
  const auto p1 = cache.get_or_compile(a, NoiseModel(), PlanOptions{});
  const auto p2 = cache.get_or_compile(a, NoiseModel(), PlanOptions::none());
  const auto p3 = cache.get_or_compile(a, mixed_noise(), PlanOptions{});
  const auto p4 = cache.get_or_compile(b, NoiseModel(), PlanOptions{});
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_NE(p1, p4);
  EXPECT_EQ(p1, cache.get_or_compile(a, NoiseModel(), PlanOptions{}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  const QuditSpace space(std::vector<int>{3, 3});
  PlanCache cache(2);
  auto circuit_with_phase = [&](double phi) {
    Circuit c(space);
    c.add_diagonal("P", {cplx{1.0, 0.0}, std::exp(cplx{0.0, phi}),
                         cplx{1.0, 0.0}},
                   {0});
    return c;
  };
  const Circuit c1 = circuit_with_phase(0.1);
  const Circuit c2 = circuit_with_phase(0.2);
  const Circuit c3 = circuit_with_phase(0.3);
  cache.get_or_compile(c1, NoiseModel(), PlanOptions{});
  cache.get_or_compile(c2, NoiseModel(), PlanOptions{});
  cache.get_or_compile(c1, NoiseModel(), PlanOptions{});  // c1 now MRU
  cache.get_or_compile(c3, NoiseModel(), PlanOptions{});  // evicts c2
  EXPECT_EQ(cache.size(), 2u);
  cache.get_or_compile(c1, NoiseModel(), PlanOptions{});
  EXPECT_EQ(cache.hits(), 2u);
  cache.get_or_compile(c2, NoiseModel(), PlanOptions{});  // recompiles
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(PlanCache, SafeUnderConcurrentHammering) {
  // The serve layer's workers resolve plans from one shared cache; hammer
  // get_or_compile from N threads over a working set larger than the
  // capacity so hits, compiles, and evictions all race. Run under
  // ThreadSanitizer in CI (the tsan job builds this suite).
  const QuditSpace space(std::vector<int>{3, 3});
  std::vector<Circuit> circuits;
  for (int k = 0; k < 6; ++k) {
    Circuit c(space);
    c.add("F", fourier(3), {k % 2});
    c.add_diagonal("P", {cplx{1.0, 0.0},
                         std::exp(cplx{0.0, 0.1 * (k + 1)}),
                         cplx{1.0, 0.0}},
                   {0});
    circuits.push_back(std::move(c));
  }
  PlanCache cache(4);  // smaller than the working set: evictions happen
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Circuit& c = circuits[(t + round) % circuits.size()];
        const auto plan =
            cache.get_or_compile(c, NoiseModel(), PlanOptions{});
        // Every caller must see a plan compiled from its own circuit.
        if (plan == nullptr || plan->steps().size() != c.size())
          mismatch = true;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) * kRounds);
  // Each circuit compiles at least once; evictions may force recompiles.
  EXPECT_GE(cache.misses(), circuits.size());
}

TEST(PlanCache, SharedAcrossSessions) {
  Rng rng(9100);
  const QuditSpace space = random_space(rng);
  const Circuit c = random_circuit(space, rng, 6, false);
  const TrajectoryBackend backend{mixed_noise()};

  auto shared = std::make_shared<PlanCache>(16);
  SessionOptions options;
  options.shared_plan_cache = shared;
  ExecutionSession first(backend, options);
  ExecutionSession second(backend, options);

  ExecutionRequest request(c);
  request.shots = 32;
  request.seed = 99;
  const ExecutionResult a = first.submit(request);
  const ExecutionResult b = second.submit(request);  // hits first's plan
  EXPECT_EQ(shared->misses(), 1u);
  EXPECT_EQ(shared->hits(), 1u);
  EXPECT_EQ(&first.plan_cache(), shared.get());
  EXPECT_EQ(&second.plan_cache(), shared.get());
  EXPECT_EQ(a.counts, b.counts);
}

// ---------------------------------------------------------------------
// Lowering structure.
// ---------------------------------------------------------------------

TEST(CompiledCircuit, ResolvesChannelsOnceAndReportsSummary) {
  const QuditSpace space(std::vector<int>{3, 3});
  Circuit c(space);
  c.add("F", fourier(3), {0});
  c.add("CSUM", csum(3, 3), {0, 1});
  const NoiseModel noise = mixed_noise();

  const CompiledCircuit plan(c, noise);
  // F: depol+dephase+loss on site 0 = 3 channels. CSUM: depol+loss per
  // site = 4 channels (dephase_2q is zero).
  EXPECT_EQ(plan.total_channels(), 7u);
  ASSERT_EQ(plan.steps().size(), 2u);
  EXPECT_EQ(plan.steps()[0].channels.size(), 3u);
  EXPECT_EQ(plan.steps()[1].channels.size(), 4u);
  EXPECT_GE(plan.max_block(), 9u);
  EXPECT_NE(plan.summary().find("2 steps"), std::string::npos);

  // CSUM is a permutation: the analyzer must classify it monomial.
  EXPECT_EQ(plan.steps()[1].op.kind, kernels::OpKernel::Kind::kMonomial);
  // Fourier is dense.
  EXPECT_EQ(plan.steps()[0].op.kind, kernels::OpKernel::Kind::kDense);
  // Standard noise Kraus operators are all monomial.
  for (const CompiledStep& step : plan.steps())
    for (const CompiledChannel& ch : step.channels)
      for (const kernels::OpKernel& k : ch.kraus)
        EXPECT_EQ(k.kind, kernels::OpKernel::Kind::kMonomial);
}

TEST(CompiledCircuit, FusionNeverCrossesNoiseChannels) {
  const QuditSpace space(std::vector<int>{3, 3});
  Circuit c(space);
  c.add("A", fourier(3), {0});
  c.add("B", fourier(3), {0});  // fusible when noiseless
  EXPECT_EQ(CompiledCircuit(c, NoiseModel()).steps().size(), 1u);
  // With per-gate noise a channel follows A, so B must not fuse into it.
  EXPECT_EQ(CompiledCircuit(c, mixed_noise()).steps().size(), 2u);
}

// ---------------------------------------------------------------------
// Satellite regressions: expectation and site_probabilities rewrites.
// ---------------------------------------------------------------------

TEST(StateVectorKernels, ExpectationMatchesNaiveContraction) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(8000 + trial);
    const QuditSpace space = random_space(rng);
    Circuit c = random_circuit(space, rng, 6, false);
    StateVector psi(space);
    StateVectorBackend::apply(c, psi);

    const int s = rng.integer(0, static_cast<int>(space.num_sites()) - 1);
    const int t = (s + 1) % static_cast<int>(space.num_sites());
    const int d = space.dim(static_cast<std::size_t>(s)) *
                  space.dim(static_cast<std::size_t>(t));
    const Matrix op = random_unitary(d, rng);

    // Naive reference: copy, apply, inner product.
    StateVector copy = psi;
    copy.apply(op, {s, t});
    const cplx naive = inner(psi.amplitudes(), copy.amplitudes());
    const cplx block_local = psi.expectation(op, {s, t});
    EXPECT_NEAR(naive.real(), block_local.real(), 1e-12);
    EXPECT_NEAR(naive.imag(), block_local.imag(), 1e-12);
  }
}

TEST(StateVectorKernels, SiteProbabilitiesMatchDigitScan) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(9000 + trial);
    const QuditSpace space = random_space(rng);
    Circuit c = random_circuit(space, rng, 6, false);
    StateVector psi(space);
    StateVectorBackend::apply(c, psi);

    for (int s = 0; s < static_cast<int>(space.num_sites()); ++s) {
      std::vector<double> reference(
          static_cast<std::size_t>(space.dim(static_cast<std::size_t>(s))),
          0.0);
      for (std::size_t i = 0; i < psi.dimension(); ++i)
        reference[static_cast<std::size_t>(
            space.digit(i, static_cast<std::size_t>(s)))] +=
            std::norm(psi.amplitude(i));
      const std::vector<double> strided = psi.site_probabilities(s);
      ASSERT_EQ(reference.size(), strided.size());
      // The stride loop visits each outcome's amplitudes in the same
      // ascending order as the digit scan: sums agree exactly.
      for (std::size_t k = 0; k < reference.size(); ++k)
        EXPECT_EQ(reference[k], strided[k]) << "site " << s << " digit " << k;
    }
  }
}

TEST(StateVectorKernels, MeasureSiteProjectsAndNormalizes) {
  Rng rng(9500);
  const QuditSpace space(std::vector<int>{3, 4, 2});
  Circuit c = random_circuit(space, rng, 6, false);
  StateVector psi(space);
  StateVectorBackend::apply(c, psi);

  StateVector copy = psi;
  Rng m1(77), m2(77);
  const int outcome = psi.measure_site(1, m1);
  const int outcome2 = copy.measure_site(1, m2);
  EXPECT_EQ(outcome, outcome2);
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-12);
  for (std::size_t i = 0; i < psi.dimension(); ++i) {
    if (space.digit(i, 1) != outcome) {
      EXPECT_EQ(psi.amplitude(i), (cplx{0.0, 0.0}));
    }
  }
  const std::vector<double> probs = psi.site_probabilities(1);
  EXPECT_NEAR(probs[static_cast<std::size_t>(outcome)], 1.0, 1e-12);
}

TEST(StateVectorKernels, ResetRestoresBasisState) {
  const QuditSpace space(std::vector<int>{3, 3});
  StateVector psi(space);
  psi.apply(fourier(3), {0});
  psi.reset();
  EXPECT_EQ(psi.amplitude(0), (cplx{1.0, 0.0}));
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-15);
  psi.reset({2, 1});
  EXPECT_EQ(psi.amplitude(space.index_of({2, 1})), (cplx{1.0, 0.0}));
  StateVector fresh(space, std::vector<int>{2, 1});
  expect_amplitudes_eq(fresh, psi);
}

}  // namespace
}  // namespace qs
