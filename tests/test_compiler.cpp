#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/state_vector_backend.h"
#include "test_support.h"
#include "common/rng.h"
#include "compiler/compile.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/metrics.h"

namespace qs {
namespace {

using test_support::final_state;

/// Chain of CSUMs over n qutrits: 0-1, 1-2, ..., plus local Fouriers.
Circuit chain_circuit(int n, int d) {
  Circuit c(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  for (int i = 0; i < n; ++i) c.add("F", fourier(d), {i});
  for (int i = 0; i + 1 < n; ++i) c.add("CSUM", csum(d, d), {i, i + 1});
  return c;
}

/// Circuit with a deliberately bad interaction pattern for a linear chain.
Circuit star_circuit(int n, int d) {
  Circuit c(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  for (int i = 1; i < n; ++i) c.add("CSUM", csum(d, d), {0, i});
  return c;
}

TEST(Mapping, InteractionWeightsSymmetric) {
  const Circuit c = chain_circuit(4, 3);
  const auto w = interaction_weights(c);
  EXPECT_DOUBLE_EQ(w[0][1], 1.0);
  EXPECT_DOUBLE_EQ(w[1][0], 1.0);
  EXPECT_DOUBLE_EQ(w[0][2], 0.0);
}

TEST(Mapping, AssignmentIsValidPermutation) {
  Rng rng(71);
  const Circuit c = chain_circuit(6, 3);
  const Processor proc = Processor::forecast_device(&rng);
  const MappingResult r = map_qudits(c, proc, rng);
  std::set<int> used;
  for (int m : r.logical_to_mode) {
    EXPECT_GE(m, 0);
    EXPECT_LT(m, proc.num_modes());
    EXPECT_TRUE(used.insert(m).second) << "duplicate mode " << m;
  }
}

TEST(Mapping, BeatsOrEqualsTrivialMapping) {
  Rng rng(72);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(8, 3);
  const MappingResult annealed = map_qudits(c, proc, rng);
  const MappingResult trivial = trivial_mapping(c, proc);
  EXPECT_LE(annealed.cost, trivial.cost + 1e-12);
}

TEST(Mapping, ExploitsCoherenceDisorder) {
  // With one cavity of clearly worse modes, heavy-use qudits should land
  // on the better cavity.
  Rng rng(73);
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 4;
  cfg.levels_per_mode = 3;
  cfg.mode_t1 = 1e-3;
  Processor proc(cfg);
  // Build a heavily-used 3-qutrit circuit; 8 modes available.
  Circuit c(QuditSpace::uniform(3, 3));
  for (int rep = 0; rep < 5; ++rep)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j) c.add("CSUM", csum(3, 3), {i, j});
  const MappingResult r = map_qudits(c, proc, rng);
  // All three qudits must be co-located (one cavity has 4 modes).
  const int cav = proc.cavity_of(r.logical_to_mode[0]);
  for (int m : r.logical_to_mode) EXPECT_EQ(proc.cavity_of(m), cav);
}

TEST(Routing, NoSwapsWhenLocal) {
  Rng rng(74);
  const Processor proc = Processor::forecast_device();
  const Circuit c = chain_circuit(3, 3);
  // Map all three qutrits into cavity 0 (4 modes available).
  const RoutingResult r = route_circuit(c, proc, {0, 1, 2});
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_EQ(r.physical.size(), c.size());
}

TEST(Routing, InsertsSwapsForDistantPairs) {
  const Processor proc = Processor::forecast_device();
  Circuit c(QuditSpace::uniform(2, 3));
  c.add("CSUM", csum(3, 3), {0, 1});
  // Mode 0 (cavity 0) and mode 12 (cavity 3): distance 3 -> 2 hops needed
  // to reach adjacency.
  const RoutingResult r = route_circuit(c, proc, {0, 12});
  EXPECT_EQ(r.swaps_inserted, 2);
  EXPECT_EQ(r.physical.size(), 3u);  // 2 swaps + the gate
}

TEST(Routing, PreservesCircuitSemantics) {
  // Simulate logical and routed circuits; final states must agree on the
  // logical qudits (after accounting for the final mode permutation).
  const int d = 2;
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = d;
  const Processor proc(cfg);
  Circuit logical(QuditSpace::uniform(2, d));
  logical.add("F", fourier(d), {0});
  logical.add("CSUM", csum(d, d), {0, 1});
  // Distant placement: modes 0 and 2 (cavities 0 and 2).
  const RoutingResult r = route_circuit(logical, proc, {0, 2});
  EXPECT_GE(r.swaps_inserted, 1);

  const StateVector logical_out = final_state(logical);
  const StateVector physical_out = final_state(r.physical);
  // Extract the reduced state on the final physical locations.
  DensityMatrix rho(physical_out);
  const DensityMatrix reduced = rho.partial_trace(
      {r.final_logical_to_mode[0], r.final_logical_to_mode[1]});
  EXPECT_NEAR(
      density_pure_fidelity(reduced.matrix(), logical_out.amplitudes()),
      1.0, 1e-9);
}

TEST(Routing, RequiresUniformDims) {
  const Processor proc = Processor::forecast_device();
  Circuit c(QuditSpace({2, 3}));
  c.add("F", fourier(2), {0});
  EXPECT_THROW(route_circuit(c, proc, {0, 1}), std::invalid_argument);
}

TEST(Scheduler, ParallelGatesOverlap) {
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 2;
  const Processor proc(cfg);
  Circuit phys(QuditSpace::uniform(2, 2));
  phys.add("SNAP", snap({0.1, 0.2}), {0}, 1e-6);
  phys.add("SNAP", snap({0.1, 0.2}), {1}, 1e-6);
  const ScheduleResult s = schedule_asap(phys, proc, {0, 1});
  EXPECT_NEAR(s.makespan, 1e-6, 1e-12);  // both run in parallel
  EXPECT_DOUBLE_EQ(s.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(s.start_times[1], 0.0);
}

TEST(Scheduler, SerialOnSharedMode) {
  ProcessorConfig cfg;
  cfg.num_cavities = 1;
  cfg.modes_per_cavity = 2;
  cfg.levels_per_mode = 2;
  const Processor proc(cfg);
  Circuit phys(QuditSpace::uniform(2, 2));
  phys.add("SNAP", snap({0.1, 0.2}), {0}, 1e-6);
  phys.add("CK", cz(2, 2), {0, 1}, 2e-6);
  const ScheduleResult s = schedule_asap(phys, proc, {0, 1});
  EXPECT_NEAR(s.start_times[1], 1e-6, 1e-12);
  EXPECT_NEAR(s.makespan, 3e-6, 1e-12);
  // Mode 1 idles while mode 0 runs its SNAP.
  EXPECT_NEAR(s.idle[1], 1e-6, 1e-12);
  EXPECT_LT(s.total_fidelity, 1.0);
}

TEST(Compile, EndToEndReport) {
  Rng rng(75);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = chain_circuit(5, 3);
  const CompileReport report = compile_circuit(c, proc, rng);
  EXPECT_GT(report.schedule.makespan, 0.0);
  EXPECT_GT(report.schedule.total_fidelity, 0.0);
  EXPECT_LE(report.schedule.total_fidelity, 1.0);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Compile, NoiseAwareBeatsTrivialOnDisorderedDevice) {
  Rng rng(76);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(6, 3);
  CompileOptions aware;
  CompileOptions naive;
  naive.use_noise_aware_mapping = false;
  Rng r1(7), r2(7);
  const CompileReport a = compile_circuit(c, proc, r1, aware);
  const CompileReport b = compile_circuit(c, proc, r2, naive);
  // The mapper's predicted gate-error cost can never exceed the identity
  // placement (identity is one of its candidate seeds).
  EXPECT_LE(a.mapping.cost, b.mapping.cost + 1e-12);
}

}  // namespace
}  // namespace qs
