#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "exec/plan.h"
#include "exec/state_vector_backend.h"
#include "test_support.h"
#include "common/rng.h"
#include "compiler/compile.h"
#include "compiler/passes.h"
#include "compiler/pipeline.h"
#include "compiler/transpile_cache.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/expm.h"
#include "linalg/metrics.h"
#include "noise/noise_model.h"
#include "qudit/kernels.h"
#include "sqed/encodings.h"
#include "sqed/gauge_model.h"

namespace qs {
namespace {

using test_support::final_state;

/// Chain of CSUMs over n qutrits: 0-1, 1-2, ..., plus local Fouriers.
Circuit chain_circuit(int n, int d) {
  Circuit c(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  for (int i = 0; i < n; ++i) c.add("F", fourier(d), {i});
  for (int i = 0; i + 1 < n; ++i) c.add("CSUM", csum(d, d), {i, i + 1});
  return c;
}

/// Circuit with a deliberately bad interaction pattern for a linear chain.
Circuit star_circuit(int n, int d) {
  Circuit c(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  for (int i = 1; i < n; ++i) c.add("CSUM", csum(d, d), {0, i});
  return c;
}

TEST(Mapping, InteractionWeightsSymmetric) {
  const Circuit c = chain_circuit(4, 3);
  const auto w = interaction_weights(c);
  EXPECT_DOUBLE_EQ(w[0][1], 1.0);
  EXPECT_DOUBLE_EQ(w[1][0], 1.0);
  EXPECT_DOUBLE_EQ(w[0][2], 0.0);
}

TEST(Mapping, AssignmentIsValidPermutation) {
  Rng rng(71);
  const Circuit c = chain_circuit(6, 3);
  const Processor proc = Processor::forecast_device(&rng);
  const MappingResult r = map_qudits(c, proc, rng);
  std::set<int> used;
  for (int m : r.logical_to_mode) {
    EXPECT_GE(m, 0);
    EXPECT_LT(m, proc.num_modes());
    EXPECT_TRUE(used.insert(m).second) << "duplicate mode " << m;
  }
}

TEST(Mapping, BeatsOrEqualsTrivialMapping) {
  Rng rng(72);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(8, 3);
  const MappingResult annealed = map_qudits(c, proc, rng);
  const MappingResult trivial = trivial_mapping(c, proc);
  EXPECT_LE(annealed.cost, trivial.cost + 1e-12);
}

TEST(Mapping, ExploitsCoherenceDisorder) {
  // With one cavity of clearly worse modes, heavy-use qudits should land
  // on the better cavity.
  Rng rng(73);
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 4;
  cfg.levels_per_mode = 3;
  cfg.mode_t1 = 1e-3;
  Processor proc(cfg);
  // Build a heavily-used 3-qutrit circuit; 8 modes available.
  Circuit c(QuditSpace::uniform(3, 3));
  for (int rep = 0; rep < 5; ++rep)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j) c.add("CSUM", csum(3, 3), {i, j});
  const MappingResult r = map_qudits(c, proc, rng);
  // All three qudits must be co-located (one cavity has 4 modes).
  const int cav = proc.cavity_of(r.logical_to_mode[0]);
  for (int m : r.logical_to_mode) EXPECT_EQ(proc.cavity_of(m), cav);
}

TEST(Routing, NoSwapsWhenLocal) {
  Rng rng(74);
  const Processor proc = Processor::forecast_device();
  const Circuit c = chain_circuit(3, 3);
  // Map all three qutrits into cavity 0 (4 modes available).
  const RoutingResult r = route_circuit(c, proc, {0, 1, 2});
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_EQ(r.physical.size(), c.size());
}

TEST(Routing, InsertsSwapsForDistantPairs) {
  const Processor proc = Processor::forecast_device();
  Circuit c(QuditSpace::uniform(2, 3));
  c.add("CSUM", csum(3, 3), {0, 1});
  // Mode 0 (cavity 0) and mode 12 (cavity 3): distance 3 -> 2 hops needed
  // to reach adjacency.
  const RoutingResult r = route_circuit(c, proc, {0, 12});
  EXPECT_EQ(r.swaps_inserted, 2);
  EXPECT_EQ(r.physical.size(), 3u);  // 2 swaps + the gate
}

TEST(Routing, PreservesCircuitSemantics) {
  // Simulate logical and routed circuits; final states must agree on the
  // logical qudits (after accounting for the final mode permutation).
  const int d = 2;
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = d;
  const Processor proc(cfg);
  Circuit logical(QuditSpace::uniform(2, d));
  logical.add("F", fourier(d), {0});
  logical.add("CSUM", csum(d, d), {0, 1});
  // Distant placement: modes 0 and 2 (cavities 0 and 2).
  const RoutingResult r = route_circuit(logical, proc, {0, 2});
  EXPECT_GE(r.swaps_inserted, 1);

  const StateVector logical_out = final_state(logical);
  const StateVector physical_out = final_state(r.physical);
  // Extract the reduced state on the final physical locations.
  DensityMatrix rho(physical_out);
  const DensityMatrix reduced = rho.partial_trace(
      {r.final_logical_to_mode[0], r.final_logical_to_mode[1]});
  EXPECT_NEAR(
      density_pure_fidelity(reduced.matrix(), logical_out.amplitudes()),
      1.0, 1e-9);
}

TEST(Routing, RequiresUniformDims) {
  const Processor proc = Processor::forecast_device();
  Circuit c(QuditSpace({2, 3}));
  c.add("F", fourier(2), {0});
  EXPECT_THROW(route_circuit(c, proc, {0, 1}), std::invalid_argument);
}

TEST(Scheduler, ParallelGatesOverlap) {
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 2;
  const Processor proc(cfg);
  Circuit phys(QuditSpace::uniform(2, 2));
  phys.add("SNAP", snap({0.1, 0.2}), {0}, 1e-6);
  phys.add("SNAP", snap({0.1, 0.2}), {1}, 1e-6);
  const ScheduleResult s = schedule_asap(phys, proc, {0, 1});
  EXPECT_NEAR(s.makespan, 1e-6, 1e-12);  // both run in parallel
  EXPECT_DOUBLE_EQ(s.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(s.start_times[1], 0.0);
}

TEST(Scheduler, SerialOnSharedMode) {
  ProcessorConfig cfg;
  cfg.num_cavities = 1;
  cfg.modes_per_cavity = 2;
  cfg.levels_per_mode = 2;
  const Processor proc(cfg);
  Circuit phys(QuditSpace::uniform(2, 2));
  phys.add("SNAP", snap({0.1, 0.2}), {0}, 1e-6);
  phys.add("CK", cz(2, 2), {0, 1}, 2e-6);
  const ScheduleResult s = schedule_asap(phys, proc, {0, 1});
  EXPECT_NEAR(s.start_times[1], 1e-6, 1e-12);
  EXPECT_NEAR(s.makespan, 3e-6, 1e-12);
  // Mode 1 idles while mode 0 runs its SNAP.
  EXPECT_NEAR(s.idle[1], 1e-6, 1e-12);
  EXPECT_LT(s.total_fidelity, 1.0);
}

// ---------------------------------------------------------------------
// Pass pipeline.
// ---------------------------------------------------------------------

TEST(Pipeline, EndToEndArtifact) {
  Rng rng(75);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = chain_circuit(5, 3);
  const auto artifact = transpile(c, proc);
  EXPECT_EQ(artifact->physical.space().num_sites(),
            static_cast<std::size_t>(proc.num_modes()));
  EXPECT_GT(artifact->schedule.makespan, 0.0);
  EXPECT_GT(artifact->schedule.total_fidelity, 0.0);
  EXPECT_LE(artifact->schedule.total_fidelity, 1.0);
  EXPECT_EQ(artifact->logical_ops, c.size());
  EXPECT_FALSE(artifact->summary().empty());
  // Default pipeline: commute-cancel, mapping, lookahead routing,
  // schedule -- one stats record per pass, in order.
  ASSERT_EQ(artifact->pass_stats.size(), 4u);
  EXPECT_EQ(artifact->pass_stats[0].pass, "commute-cancel");
  EXPECT_EQ(artifact->pass_stats[1].pass, "noise-aware-mapping");
  EXPECT_EQ(artifact->pass_stats[2].pass, "lookahead-routing");
  EXPECT_EQ(artifact->pass_stats[3].pass, "schedule");
  EXPECT_EQ(artifact->pass_stats[2].swaps_added, artifact->swaps_inserted);
}

TEST(Pipeline, NoiseAwareBeatsTrivialOnDisorderedDevice) {
  Rng rng(76);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(6, 3);
  TranspileOptions naive;
  naive.use_noise_aware_mapping = false;
  const auto a = transpile(c, proc);
  const auto b = transpile(c, proc, naive);
  // The mapper's predicted gate-error cost can never exceed the identity
  // placement (identity is one of its candidate seeds).
  EXPECT_LE(a->mapping.cost, b->mapping.cost + 1e-12);
}

TEST(Pipeline, DeterministicBitwiseForEqualOptions) {
  Rng rng(77);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(6, 3);
  const auto a = transpile(c, proc);
  const auto b = transpile(c, proc);
  // Two identical requests produce bitwise-identical physical circuits:
  // same fingerprint (hashes exact payload bits), same permutations,
  // same schedule bits.
  EXPECT_EQ(fingerprint(a->physical), fingerprint(b->physical));
  ASSERT_EQ(a->physical.size(), b->physical.size());
  for (std::size_t i = 0; i < a->physical.size(); ++i) {
    const Operation& x = a->physical.operations()[i];
    const Operation& y = b->physical.operations()[i];
    ASSERT_EQ(x.sites, y.sites);
    ASSERT_EQ(x.diagonal, y.diagonal);
    const std::size_t count =
        x.diagonal ? x.diag.size() : x.matrix.rows() * x.matrix.cols();
    const cplx* xs = x.diagonal ? x.diag.data() : x.matrix.data();
    const cplx* ys = y.diagonal ? y.diag.data() : y.matrix.data();
    for (std::size_t k = 0; k < count; ++k) ASSERT_EQ(xs[k], ys[k]);
  }
  EXPECT_EQ(a->final_logical_to_mode, b->final_logical_to_mode);
  EXPECT_EQ(a->schedule.start_times, b->schedule.start_times);
  EXPECT_EQ(a->schedule.total_fidelity, b->schedule.total_fidelity);
}

TEST(Pipeline, ValidatesRoutingAndScheduleRan) {
  Rng rng(78);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = chain_circuit(3, 3);
  PassManager incomplete;
  incomplete.add(std::make_unique<MappingPass>());
  EXPECT_THROW(incomplete.run(c, proc), std::invalid_argument);
  // A hand-built complete pipeline works without the optional passes.
  PassManager manual;
  manual.add(std::make_unique<MappingPass>());
  manual.add(std::make_unique<GreedyRoutingPass>());
  manual.add(std::make_unique<SchedulePass>());
  const auto artifact = manual.run(c, proc);
  EXPECT_EQ(artifact->pass_stats.size(), 3u);
  EXPECT_GT(artifact->schedule.makespan, 0.0);
}

TEST(Commutation, CancelsInversePairsAcrossCommutingGates) {
  // F(0), phase(1), F^dagger(0): the two F's cancel through the
  // commuting (disjoint-site) phase gate.
  const int d = 3;
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = d;
  const Processor proc(cfg);
  Circuit c(QuditSpace::uniform(2, d));
  const Matrix f = fourier(d);
  c.add("F", f, {0});
  c.add_diagonal("PHASE", {cplx(1, 0), cplx(0, 1), cplx(-1, 0)}, {1});
  c.add("Fdag", f.adjoint(), {0});
  TranspileOptions off;
  off.commute_gates = false;
  const auto with = transpile(c, proc);
  const auto without = transpile(c, proc, off);
  EXPECT_EQ(with->physical.size() - static_cast<std::size_t>(
                                        with->swaps_inserted),
            1u);
  EXPECT_EQ(without->physical.size() -
                static_cast<std::size_t>(without->swaps_inserted),
            3u);
  // Semantics: populations agree between both physical circuits once
  // un-permuted (checked exhaustively by Routing.RandomizedMixed below;
  // here the cancelled circuit must act as the lone phase gate).
  const StateVector out = test_support::final_state(with->physical);
  EXPECT_NEAR(std::norm(out.amplitude(0)), 1.0, 1e-12);
}

TEST(Routing, LookaheadPlusCommutationBeatSeedRouterOnRotor2D) {
  // The Table I rotor-ladder Trotter step under identity placement (the
  // regime where the swap network dominates): the lookahead router must
  // strictly reduce inserted swaps vs the greedy seed router.
  Rng rng(3);
  const Processor proc = Processor::forecast_device(&rng);
  const Hamiltonian h = gauge_ladder_2d(9, 2, {4, 1.0, 1.0});
  const Circuit step = native_trotter_circuit(h, {2, 0.1, 1});
  TranspileOptions seed_router;
  seed_router.use_noise_aware_mapping = false;
  seed_router.commute_gates = false;
  seed_router.lookahead_routing = false;
  TranspileOptions optimized;
  optimized.use_noise_aware_mapping = false;
  const auto baseline = transpile(step, proc, seed_router);
  const auto tuned = transpile(step, proc, optimized);
  EXPECT_GT(baseline->swaps_inserted, 0);
  EXPECT_LT(tuned->swaps_inserted, baseline->swaps_inserted);
  EXPECT_LT(tuned->schedule.makespan, baseline->schedule.makespan);
}

/// Marginal populations of the logical register extracted from a routed
/// physical state via the final logical->mode permutation.
std::vector<double> unpermuted_populations(
    const Circuit& physical, const std::vector<double>& phys_probs,
    const QuditSpace& logical_space, const std::vector<int>& final_l2m) {
  std::vector<double> probs(logical_space.dimension(), 0.0);
  const QuditSpace& phys_space = physical.space();
  for (std::size_t i = 0; i < phys_probs.size(); ++i) {
    if (phys_probs[i] == 0.0) continue;
    std::vector<int> digits(logical_space.num_sites());
    for (std::size_t q = 0; q < digits.size(); ++q)
      digits[q] = phys_space.digit(i, static_cast<std::size_t>(final_l2m[q]));
    probs[logical_space.index_of(digits)] += phys_probs[i];
  }
  return probs;
}

TEST(Routing, RandomizedMixedCircuitsPreservePopulations) {
  // Randomized mixed circuits routed by both routers: the physical
  // circuit, executed and un-permuted, must reproduce the logical
  // circuit's exact populations.
  Rng rng(91);
  ProcessorConfig cfg;
  cfg.num_cavities = 4;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const int d = 3;
  for (int trial = 0; trial < 8; ++trial) {
    Circuit logical(QuditSpace::uniform(3, d));
    for (int g = 0; g < 10; ++g) {
      if (rng.bernoulli(0.5)) {
        logical.add("U", random_unitary(d, rng),
                    {rng.integer(0, 2)});
      } else {
        int a = rng.integer(0, 2);
        int b = rng.integer(0, 2);
        if (a == b) b = (b + 1) % 3;
        if (rng.bernoulli(0.5))
          logical.add("CSUM", csum(d, d), {a, b});
        else
          logical.add("CZ", cz(d, d), {a, b});
      }
    }
    // Scattered placement so routing actually happens.
    std::vector<int> placement = {0, 3, 1};
    const StateVector ideal = test_support::final_state(logical);
    std::vector<double> want(ideal.dimension());
    for (std::size_t i = 0; i < want.size(); ++i)
      want[i] = std::norm(ideal.amplitude(i));

    for (const bool lookahead : {false, true}) {
      const RoutingResult routed =
          lookahead
              ? route_circuit_lookahead(logical, proc, placement)
              : route_circuit(logical, proc, placement);
      const StateVector phys_out = test_support::final_state(routed.physical);
      std::vector<double> phys_probs(phys_out.dimension());
      for (std::size_t i = 0; i < phys_probs.size(); ++i)
        phys_probs[i] = std::norm(phys_out.amplitude(i));
      const std::vector<double> got = unpermuted_populations(
          routed.physical, phys_probs, logical.space(),
          routed.final_logical_to_mode);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-9)
            << "trial " << trial << " lookahead " << lookahead
            << " index " << i;
    }
  }
}

TEST(Scheduler, AlapDelaysStartsAndKeepsMakespan) {
  ProcessorConfig cfg;
  cfg.num_cavities = 2;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 2;
  const Processor proc(cfg);
  Circuit phys(QuditSpace::uniform(2, 2));
  phys.add("SNAP", snap({0.1, 0.2}), {0}, 1e-6);
  phys.add("SNAP2", snap({0.3, 0.1}), {0}, 2e-6);
  phys.add("SNAP3", snap({0.2, 0.4}), {1}, 1e-6);
  const ScheduleResult asap = schedule_asap(phys, proc, {0, 1});
  const ScheduleResult alap = schedule_alap(phys, proc, {0, 1});
  EXPECT_DOUBLE_EQ(alap.makespan, asap.makespan);
  EXPECT_DOUBLE_EQ(alap.gate_fidelity, asap.gate_fidelity);
  ASSERT_EQ(alap.start_times.size(), asap.start_times.size());
  for (std::size_t i = 0; i < alap.start_times.size(); ++i)
    EXPECT_GE(alap.start_times[i], asap.start_times[i] - 1e-15);
  // The lone mode-1 gate has slack: ALAP pushes it to the end.
  EXPECT_NEAR(alap.start_times[2], asap.makespan - 1e-6, 1e-15);
  EXPECT_DOUBLE_EQ(asap.start_times[2], 0.0);
  // The ALAP direction is selectable through the pipeline.
  TranspileOptions opts;
  opts.schedule = ScheduleDirection::kAlap;
  Rng rng(92);
  const Processor device = Processor::forecast_device(&rng);
  const auto artifact = transpile(chain_circuit(3, 3), device, opts);
  EXPECT_GT(artifact->schedule.makespan, 0.0);
}

// ---------------------------------------------------------------------
// Transpile cache.
// ---------------------------------------------------------------------

TEST(TranspileCacheTest, HitsMissesAndKeySensitivity) {
  Rng rng(93);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = chain_circuit(4, 3);
  TranspileCache cache(8);
  const auto a = cache.get_or_transpile(c, proc);
  const auto b = cache.get_or_transpile(c, proc);
  EXPECT_EQ(a.get(), b.get());  // same artifact object
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A different anneal seed is a different key.
  TranspileOptions other;
  other.seed = 1234;
  const auto c2 = cache.get_or_transpile(c, proc, other);
  EXPECT_NE(c2.get(), a.get());
  EXPECT_EQ(cache.misses(), 2u);
  // A different device is a different key.
  Rng rng2(94);
  const Processor disorder = Processor::forecast_device(&rng2);
  cache.get_or_transpile(c, disorder);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(TranspileCacheTest, ConcurrentSameKeyTranspilesOnce) {
  Rng rng(95);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(5, 3);
  TranspileCache cache(4);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const TranspiledCircuit>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { got[t] = cache.get_or_transpile(c, proc); });
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t].get(), got[0].get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::size_t>(kThreads - 1));
}

// ---------------------------------------------------------------------
// Parametric transpilation: structure-only passes, shared artifacts.
// ---------------------------------------------------------------------

/// Uniform-qutrit chain with Fouriers, CSUM entanglers, and parametric
/// phase + rotation layers over two parameter slots.
Circuit parametric_chain(int n, int d) {
  Circuit c(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const auto phase = make_diagonal_generator(0x70aa, [d](double angle) {
    std::vector<cplx> diag(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k)
      diag[static_cast<std::size_t>(k)] = std::exp(cplx{0.0, angle * k});
    return diag;
  });
  const Matrix h = fourier(d) + fourier(d).adjoint();
  const auto rot = make_dense_generator(0x70bb, [h](double angle) {
    return expm_hermitian(h, cplx{0.0, -angle});
  });
  for (int i = 0; i < n; ++i) c.add("F", fourier(d), {i});
  for (int i = 0; i + 1 < n; ++i) c.add("CSUM", csum(d, d), {i, i + 1});
  for (int i = 0; i < n; ++i)
    c.add_parametric("PH", phase, ParamExpr{i % 2, 1.0, 0.1 * i}, {i});
  for (int i = 0; i + 1 < n; ++i) c.add("CSUM", csum(d, d), {i, i + 1});
  for (int i = 0; i < n; ++i)
    c.add_parametric("ROT", rot, ParamExpr{i % 2, 0.5, 0.0}, {i});
  return c;
}

TEST(TranspileParametric, CacheSharesOneArtifactAcrossBindings) {
  Rng rng(97);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit symbolic = parametric_chain(4, 3);
  TranspileCache cache(8);
  const auto art = cache.get_or_transpile(symbolic, proc);
  const auto art1 = cache.get_or_transpile(symbolic.bind({0.3, -0.7}), proc);
  const auto art2 = cache.get_or_transpile(symbolic.bind({1.1, 0.2}), proc);
  // One structural key: the symbolic circuit and every binding share the
  // same transpiled artifact (a sweep transpiles exactly once).
  EXPECT_EQ(art.get(), art1.get());
  EXPECT_EQ(art.get(), art2.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TranspileParametric, BindCommutesWithTranspilationBothRouters) {
  // The hard contract end to end: transpiling the symbolic circuit and
  // binding the lowered plan equals transpiling the bound circuit and
  // lowering it -- bitwise -- for both routers. Passes may only read
  // structure, so the physical circuits differ solely in parametric
  // payload bits (equal structural digests).
  // Small 4-mode qutrit device: the routed physical register stays
  // state-vector simulable (3^4 amplitudes).
  ProcessorConfig cfg;
  cfg.num_cavities = 4;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const Circuit symbolic = parametric_chain(4, 3);
  const std::vector<double> params = {0.37, -1.2};
  const Circuit bound = symbolic.bind(params);

  for (const bool lookahead : {false, true}) {
    TranspileOptions opts;
    opts.lookahead_routing = lookahead;
    const auto sym_art = transpile(symbolic, proc, opts);
    const auto bound_art = transpile(bound, proc, opts);
    EXPECT_EQ(structural_fingerprint(sym_art->physical),
              structural_fingerprint(bound_art->physical));
    EXPECT_EQ(sym_art->final_logical_to_mode, bound_art->final_logical_to_mode);

    const CompiledCircuit sym_plan(sym_art->physical, NoiseModel(),
                                   PlanOptions{});
    ASSERT_TRUE(sym_plan.parametric());
    EXPECT_EQ(sym_plan.num_parameters(), 2u);
    const auto bound_plan = sym_plan.bind(params);
    const CompiledCircuit rebuilt(bound_art->physical, NoiseModel(),
                                  PlanOptions{});
    StateVector via_bind(sym_art->physical.space());
    StateVector via_rebuild(bound_art->physical.space());
    kernels::Scratch scratch;
    bound_plan->run_pure(via_bind, scratch);
    rebuilt.run_pure(via_rebuild, scratch);
    ASSERT_EQ(via_bind.dimension(), via_rebuild.dimension());
    for (std::size_t i = 0; i < via_bind.dimension(); ++i)
      EXPECT_EQ(via_rebuild.amplitude(i), via_bind.amplitude(i))
          << "lookahead " << lookahead << " amplitude " << i;
  }
}

// The deprecated compile_circuit shim must keep matching the pipeline it
// wraps until removal; silence the markers locally.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

TEST(LegacyCompileShim, MatchesPipelineWithSameDrawnSeed) {
  Rng rng(96);
  const Processor proc = Processor::forecast_device(&rng);
  const Circuit c = star_circuit(6, 3);
  Rng shim_rng(7);
  const CompileReport report = compile_circuit(c, proc, shim_rng);
  TranspileOptions opts;
  opts.seed = Rng(7).draw_seed();  // the seed the shim drew
  const auto artifact = transpile(c, proc, opts);
  EXPECT_EQ(fingerprint(report.routing.physical),
            fingerprint(artifact->physical));
  EXPECT_EQ(report.routing.swaps_inserted, artifact->swaps_inserted);
  EXPECT_EQ(report.routing.final_logical_to_mode,
            artifact->final_logical_to_mode);
  EXPECT_EQ(report.schedule.makespan, artifact->schedule.makespan);
  EXPECT_FALSE(report.summary().empty());
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace qs
