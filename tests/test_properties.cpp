// Property-based suites: randomized invariants checked across parameter
// sweeps (dimension, channel strength, circuit shape).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/executor.h"
#include "common/rng.h"
#include "gates/bosonic.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/eigen.h"
#include "linalg/expm.h"
#include "linalg/metrics.h"
#include "noise/channels.h"
#include "noise/noise_model.h"
#include "dynamics/trotter.h"
#include "exec/density_matrix_backend.h"
#include "exec/trajectory_backend.h"
#include "qudit/density_matrix.h"
#include "qudit/state_vector.h"
#include "sqed/gauge_model.h"
#include "synth/snap_displacement.h"
#include "tomo/reservoir_tomography.h"

namespace qs {
namespace {

// ---------------------------------------------------------------------
// Gate properties across dimensions.
// ---------------------------------------------------------------------

class DimSweep : public ::testing::TestWithParam<int> {};

TEST_P(DimSweep, RandomUnitariesPreserveEverything) {
  const int d = GetParam();
  Rng rng(1000 + d);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix u = random_unitary(d, rng);
    EXPECT_TRUE(u.is_unitary(1e-9));
    const std::vector<cplx> psi = random_state(d, rng);
    const std::vector<cplx> upsi = u * psi;
    EXPECT_NEAR(norm(upsi), 1.0, 1e-10);
  }
}

TEST_P(DimSweep, EighRoundTripRandom) {
  const int d = GetParam();
  Rng rng(2000 + d);
  Matrix h(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
  for (int r = 0; r < d; ++r) {
    h(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        rng.normal();
    for (int c = r + 1; c < d; ++c) {
      h(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          rng.complex_normal();
      h(static_cast<std::size_t>(c), static_cast<std::size_t>(r)) =
          std::conj(h(static_cast<std::size_t>(r),
                      static_cast<std::size_t>(c)));
    }
  }
  const Matrix u = evolution_unitary(h, 0.37);
  EXPECT_TRUE(u.is_unitary(1e-9));
  // Inverse evolution returns to identity.
  const Matrix back = evolution_unitary(h, -0.37);
  EXPECT_LT(max_abs_diff(u * back,
                         Matrix::identity(static_cast<std::size_t>(d))),
            1e-9);
}

TEST_P(DimSweep, WeylGroupClosure) {
  const int d = GetParam();
  // X^a Z^b X^c Z^e = phase * X^{a+c} Z^{b+e}.
  const Matrix lhs = weyl(d, 1, 1) * weyl(d, 1, 0);
  const Matrix rhs = weyl(d, 2, 1);
  EXPECT_NEAR(unitary_fidelity(lhs, rhs), 1.0, 1e-9);
}

TEST_P(DimSweep, ChannelsAreCptpAcrossStrengths) {
  const int d = GetParam();
  for (double p : {1e-4, 0.1, 0.5, 0.9}) {
    EXPECT_TRUE(is_cptp(depolarizing_channel(d, p)));
    EXPECT_TRUE(is_cptp(dephasing_channel(d, p)));
    EXPECT_TRUE(is_cptp(amplitude_damping_channel(d, p)));
  }
}

TEST_P(DimSweep, ChannelContractsTraceDistance) {
  // CPTP maps are contractive: D(E(rho), E(sigma)) <= D(rho, sigma).
  const int d = GetParam();
  Rng rng(3000 + d);
  const Matrix rho = random_density(d, 2, rng);
  const Matrix sigma = random_density(d, 2, rng);
  const double before = trace_distance(rho, sigma);
  auto apply_channel = [&](const std::vector<Matrix>& kraus,
                           const Matrix& x) {
    Matrix out(x.rows(), x.cols());
    for (const Matrix& k : kraus) out += k * x * k.adjoint();
    return out;
  };
  for (const auto& kraus :
       {depolarizing_channel(d, 0.3), amplitude_damping_channel(d, 0.4)}) {
    const double after =
        trace_distance(apply_channel(kraus, rho), apply_channel(kraus, sigma));
    EXPECT_LE(after, before + 1e-9);
  }
}

TEST_P(DimSweep, CsumFourierCzIdentityHolds) {
  const int d = GetParam();
  const Matrix f = fourier(d);
  const Matrix id = Matrix::identity(static_cast<std::size_t>(d));
  const Matrix lhs = csum(d, d);
  const Matrix rhs = two_site(id, f.adjoint()) * cz(d, d) * two_site(id, f);
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
}

TEST_P(DimSweep, DisplacementGroupLaw) {
  // D(a) D(b) = e^{i Im(a b*)} D(a+b) on a large-enough truncation.
  const int d = GetParam();
  const int dim = d + 14;
  Rng rng(4000 + d);
  const cplx a{0.3 * rng.normal(), 0.3 * rng.normal()};
  const cplx b{0.3 * rng.normal(), 0.3 * rng.normal()};
  const Matrix lhs = displacement(dim, a) * displacement(dim, b);
  const Matrix rhs = displacement(dim, a + b);
  // Compare on the low-Fock corner where truncation effects are absent.
  const cplx phase = std::exp(cplx{0.0, (a * std::conj(b)).imag()});
  for (int r = 0; r < d; ++r)
    for (int c = 0; c < d; ++c)
      EXPECT_NEAR(std::abs(lhs(static_cast<std::size_t>(r),
                               static_cast<std::size_t>(c)) -
                           phase * rhs(static_cast<std::size_t>(r),
                                       static_cast<std::size_t>(c))),
                  0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, DimSweep, ::testing::Values(2, 3, 4, 5, 6));

// ---------------------------------------------------------------------
// Noisy-execution properties.
// ---------------------------------------------------------------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, DensityMatrixStaysPhysical) {
  const double p = GetParam();
  Rng rng(17);
  Circuit c(QuditSpace({3, 3}));
  c.add("F", fourier(3), {0});
  c.add("CSUM", csum(3, 3), {0, 1});
  c.add("F", fourier(3), {1});
  NoiseParams np;
  np.depol_1q = p;
  np.depol_2q = 2.0 * p;
  np.loss_per_gate = 0.5 * p;
  DensityMatrix rho(c.space());
  DensityMatrixBackend::apply(c, rho, NoiseModel(np));
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
  EXPECT_TRUE(rho.matrix().is_hermitian(1e-9));
  const EigResult er = eigh(rho.matrix());
  for (double lam : er.values) EXPECT_GT(lam, -1e-9);
  EXPECT_LE(rho.purity(), 1.0 + 1e-9);
}

TEST_P(NoiseSweep, PurityDecreasesWithNoise) {
  const double p = GetParam();
  Circuit c(QuditSpace({3}));
  c.add("F", fourier(3), {0});
  NoiseParams weak, strong;
  weak.depol_1q = p;
  strong.depol_1q = std::min(1.0, 3.0 * p);
  DensityMatrix rho_w(c.space()), rho_s(c.space());
  DensityMatrixBackend::apply(c, rho_w, NoiseModel(weak));
  DensityMatrixBackend::apply(c, rho_s, NoiseModel(strong));
  EXPECT_GE(rho_w.purity(), rho_s.purity() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Strengths, NoiseSweep,
                         ::testing::Values(0.01, 0.05, 0.2));

// ---------------------------------------------------------------------
// Model-level properties.
// ---------------------------------------------------------------------

TEST(Properties, GaugeChainSpectrumScalesWithCoupling) {
  // Electric-term-only spectrum is exactly known; hopping lowers the
  // ground state (variational bound).
  for (int d : {2, 3, 4}) {
    const Hamiltonian free_h = gauge_chain(2, {d, 1.0, 0.0});
    const Hamiltonian coupled = gauge_chain(2, {d, 1.0, 1.0});
    const EigResult e_free = eigh(free_h.dense());
    const EigResult e_coupled = eigh(coupled.dense());
    EXPECT_LE(e_coupled.values[0], e_free.values[0] + 1e-12) << "d=" << d;
  }
}

TEST(Properties, TrotterErrorDecreasesWithStepCount) {
  const Hamiltonian h = gauge_chain(2, {3, 1.0, 1.0});
  const double t = 1.0;
  const Matrix exact = exact_evolution(h, t);
  double prev = 1e9;
  for (int steps : {2, 4, 8, 16}) {
    TrotterOptions opt{2, t / steps, steps};
    const double err =
        1.0 - unitary_fidelity(circuit_unitary(trotter_circuit(h, opt)),
                               exact);
    EXPECT_LE(err, prev * 1.05);
    prev = err;
  }
}

TEST(Properties, TrajectoriesUnbiasedAcrossChannels) {
  // Trajectory mean of a dephasing+loss channel matches the exact DM for
  // a random circuit.
  Rng rng(18);
  Circuit c(QuditSpace({4}));
  c.add("U", random_unitary(4, rng), {0});
  c.add("U2", random_unitary(4, rng), {0});
  NoiseParams p;
  p.dephase_1q = 0.15;
  p.loss_per_gate = 0.1;
  const NoiseModel noise(p);
  DensityMatrix rho(c.space());
  DensityMatrixBackend::apply(c, rho, noise);
  const auto exact = rho.probabilities();
  std::vector<double> traj(4, 0.0);
  const int shots = 8000;
  for (int s = 0; s < shots; ++s) {
    StateVector psi(c.space());
    TrajectoryBackend::apply(c, psi, noise, rng);
    for (std::size_t i = 0; i < 4; ++i)
      traj[i] += std::norm(psi.amplitude(i)) / shots;
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(traj[i], exact[i], 0.02);
}

TEST(Properties, SnapDisplacementFidelityImprovesWithDepth) {
  // More ansatz layers cannot make the best achievable fidelity worse.
  GateDurations dur;
  SnapSynthOptions shallow;
  shallow.layers = 1;
  shallow.max_layers = 1;
  shallow.iters = 150;
  shallow.restarts = 1;
  shallow.target_fidelity = 0.999999;  // force full optimization
  SnapSynthOptions deep = shallow;
  deep.layers = 5;
  deep.max_layers = 5;
  const double f_shallow =
      synthesize_fourier(3, shallow, dur).fidelity_truncated;
  const double f_deep = synthesize_fourier(3, deep, dur).fidelity_truncated;
  EXPECT_GE(f_deep, f_shallow - 0.02);
}

TEST(Properties, ProjectToDensityIsIdempotent) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix noisy(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 4; ++c)
        noisy(r, c) = rng.complex_normal();
    const Matrix once = project_to_density(noisy);
    const Matrix twice = project_to_density(once);
    EXPECT_LT(max_abs_diff(once, twice), 1e-9);
    EXPECT_NEAR(once.trace().real(), 1.0, 1e-10);
  }
}

TEST(Properties, PartialTraceConsistentWithExpectation) {
  // Tr(rho (A (x) I)) == Tr(Tr_B(rho) A) for random states.
  Rng rng(20);
  const QuditSpace space({3, 4});
  StateVector psi(space, random_state(12, rng));
  const DensityMatrix rho(psi);
  const Matrix a = shift_mixer_hamiltonian(3);
  const DensityMatrix reduced = rho.partial_trace({0});
  const double via_full = rho.expectation(a, {0}).real();
  const double via_reduced = (reduced.matrix() * a).trace().real();
  EXPECT_NEAR(via_full, via_reduced, 1e-10);
}

}  // namespace
}  // namespace qs
