#include <gtest/gtest.h>

#include <cmath>

#include "circuit/executor.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/metrics.h"
#include "synth/csum_plan.h"
#include "synth/snap_displacement.h"

namespace qs {
namespace {

SnapSynthOptions fast_options() {
  SnapSynthOptions opt;
  opt.layers = 4;
  opt.max_layers = 10;
  opt.iters = 250;
  opt.restarts = 2;
  opt.target_fidelity = 0.99;
  return opt;
}

TEST(SnapSynth, CompilesQutritFourier) {
  const SnapSynthResult r =
      synthesize_fourier(3, fast_options(), GateDurations{});
  EXPECT_GT(r.fidelity_truncated, 0.99);
  EXPECT_GT(r.fidelity_truncated, 0.95);
  EXPECT_EQ(r.displacement_count, r.layers + 1);
  EXPECT_EQ(r.snap_count, r.layers);
  EXPECT_GT(r.duration, 0.0);
}

TEST(SnapSynth, CompilesQubitHadamardLike) {
  const SnapSynthResult r =
      synthesize_fourier(2, fast_options(), GateDurations{});
  EXPECT_GT(r.fidelity_truncated, 0.99);
}

TEST(SnapSynth, EmittedCircuitMatchesReportedFidelity) {
  const SnapSynthResult r =
      synthesize_fourier(3, fast_options(), GateDurations{});
  // Recompute the emitted-circuit fidelity independently.
  Matrix u = Matrix::identity(3);
  for (const Operation& op : r.circuit.operations()) {
    if (op.diagonal)
      u = Matrix::diagonal(op.diag) * u;
    else
      u = op.matrix * u;
  }
  EXPECT_NEAR(unitary_fidelity(fourier(3), u), r.fidelity_truncated, 1e-9);
}

TEST(SnapSynth, RejectsNonUnitaryTarget) {
  Matrix bad(3, 3);
  bad(0, 0) = 2.0;
  EXPECT_THROW(synthesize_single_mode(bad, fast_options(), GateDurations{}),
               std::invalid_argument);
}

TEST(SnapSynth, DiagonalTargetIsEasy) {
  // A SNAP-like diagonal target should reach very high fidelity quickly.
  SnapSynthOptions opt = fast_options();
  opt.layers = 2;
  const Matrix target = snap({0.3, -0.7, 1.1});
  const SnapSynthResult r =
      synthesize_single_mode(target, opt, GateDurations{});
  EXPECT_GT(r.fidelity_truncated, 0.99);
}

TEST(ModeSwap, ExactSwapFromBeamsplitterAndSnap) {
  for (int d : {2, 3, 4, 5}) {
    Circuit c(QuditSpace({d, d}));
    append_mode_swap(c, 0, 1, GateDurations{});
    const Matrix u = circuit_unitary(c);
    EXPECT_GT(unitary_fidelity(swap_gate(d), u), 1.0 - 1e-9) << "d=" << d;
  }
}

TEST(CsumPlan, CoLocatedHighFidelity) {
  const CsumPlan plan = plan_csum(3, false, fast_options(), GateDurations{});
  // Paper claim context (E4): >99% synthesis fidelity in noiseless setting.
  EXPECT_GT(plan.unitary_fidelity, 0.9);
  EXPECT_GT(plan.fourier_fidelity, 0.95);
  EXPECT_FALSE(plan.adjacent);
  EXPECT_GT(plan.duration, 0.0);
  EXPECT_GT(plan.native_ops, 3);
}

TEST(CsumPlan, ExactFourierGivesExactCsum) {
  // With ideal Fourier gates the construction is exact; validate the
  // pipeline by substituting the ideal decomposition.
  const int d = 4;
  Circuit c(QuditSpace({d, d}));
  c.add("F", fourier(d), {1});
  std::vector<cplx> diag(static_cast<std::size_t>(d * d));
  for (int a = 0; a < d; ++a)
    for (int b = 0; b < d; ++b)
      diag[static_cast<std::size_t>(a + d * b)] =
          std::exp(kI * (kTwoPi * a * b / d));
  c.add_diagonal("CK", std::move(diag), {0, 1});
  c.add("Fdag", fourier(d).adjoint(), {1});
  EXPECT_GT(unitary_fidelity(csum(d, d), circuit_unitary(c)), 1.0 - 1e-9);
}

TEST(CsumPlan, AdjacentVariantUsesBridge) {
  const CsumPlan plan = plan_csum(2, true, fast_options(), GateDurations{});
  EXPECT_TRUE(plan.adjacent);
  EXPECT_EQ(plan.circuit.space().num_sites(), 3u);
  EXPECT_GT(plan.unitary_fidelity, 0.9);
  // Bridged variant must be slower than co-located.
  const CsumPlan local = plan_csum(2, false, fast_options(), GateDurations{});
  EXPECT_GT(plan.duration, local.duration);
  EXPECT_GT(plan.native_ops, local.native_ops);
}

TEST(CsumPlan, HardwareFidelityEstimate) {
  const Processor proc = Processor::forecast_device();
  const CsumPlan plan = plan_csum(3, false, fast_options(), GateDurations{});
  const double f = estimate_hardware_fidelity(plan.circuit, proc, {0, 1});
  EXPECT_GT(f, 0.5);
  EXPECT_LT(f, 1.0);
  // Worse transmon -> lower hardware fidelity.
  ProcessorConfig cfg = proc.config();
  cfg.transmon_t1 = 5e-6;
  const Processor worse(cfg);
  EXPECT_LT(estimate_hardware_fidelity(plan.circuit, worse, {0, 1}), f);
}

}  // namespace
}  // namespace qs
