#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "linalg/metrics.h"
#include "linalg/types.h"

namespace qs {
namespace {

class WeylGatesP : public ::testing::TestWithParam<int> {};

TEST_P(WeylGatesP, XIsUnitaryAndCyclic) {
  const int d = GetParam();
  const Matrix x = weyl_x(d);
  EXPECT_TRUE(x.is_unitary());
  // X^d = I.
  Matrix p = Matrix::identity(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) p = x * p;
  EXPECT_LT(max_abs_diff(p, Matrix::identity(static_cast<std::size_t>(d))),
            1e-10);
}

TEST_P(WeylGatesP, ZIsUnitaryAndCyclic) {
  const int d = GetParam();
  const Matrix z = weyl_z(d);
  EXPECT_TRUE(z.is_unitary());
  Matrix p = Matrix::identity(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) p = z * p;
  EXPECT_LT(max_abs_diff(p, Matrix::identity(static_cast<std::size_t>(d))),
            1e-10);
}

TEST_P(WeylGatesP, CommutationRelation) {
  // Z X = w X Z with w = exp(2 pi i / d).
  const int d = GetParam();
  const Matrix lhs = weyl_z(d) * weyl_x(d);
  const Matrix rhs = weyl_x(d) * weyl_z(d) * std::exp(kI * (kTwoPi / d));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST_P(WeylGatesP, FourierDiagonalizesX) {
  // F^dag X F = Z (up to convention F X F^dag = Z^dag etc.); check
  // F^dag X F is diagonal with the d-th roots of unity.
  const int d = GetParam();
  const Matrix f = fourier(d);
  EXPECT_TRUE(f.is_unitary(1e-10));
  const Matrix m = f.adjoint() * weyl_x(d) * f;
  for (int r = 0; r < d; ++r) {
    for (int c = 0; c < d; ++c) {
      if (r != c) {
        EXPECT_LT(std::abs(m(static_cast<std::size_t>(r),
                             static_cast<std::size_t>(c))),
                  1e-10);
      }
    }
  }
}

TEST_P(WeylGatesP, FourierFourthPowerIsIdentity) {
  const int d = GetParam();
  const Matrix f = fourier(d);
  const Matrix f4 = f * f * f * f;
  EXPECT_LT(max_abs_diff(f4, Matrix::identity(static_cast<std::size_t>(d))),
            1e-9);
}

TEST_P(WeylGatesP, CsumDecompositionIdentity) {
  // CSUM = (I (x) F^dag) CZ (I (x) F) -- the synthesis identity used by
  // the compiler.
  const int d = GetParam();
  const Matrix f = fourier(d);
  const Matrix id = Matrix::identity(static_cast<std::size_t>(d));
  const Matrix lhs = csum(d, d);
  const Matrix rhs = two_site(id, f.adjoint()) * cz(d, d) * two_site(id, f);
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
}

TEST_P(WeylGatesP, CsumIsClifford) {
  // CSUM conjugates X (x) I to X (x) X (control-side X propagates).
  const int d = GetParam();
  const Matrix cs = csum(d, d);
  const Matrix id = Matrix::identity(static_cast<std::size_t>(d));
  const Matrix lhs = cs * two_site(weyl_x(d), id) * cs.adjoint();
  const Matrix rhs = two_site(weyl_x(d), weyl_x(d));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
}

TEST_P(WeylGatesP, CsumOrderIsD) {
  // CSUM^d = identity.
  const int d = GetParam();
  const Matrix cs = csum(d, d);
  Matrix p = Matrix::identity(cs.rows());
  for (int i = 0; i < d; ++i) p = cs * p;
  EXPECT_LT(max_abs_diff(p, Matrix::identity(cs.rows())), 1e-9);
}

TEST_P(WeylGatesP, CrossKerrRealizesCzAtMagicTime) {
  // exp(-i chi t n1 n2) with chi t = 2 pi (d-1)/d equals CZ_d.
  const int d = GetParam();
  const double chi_t = kTwoPi * (d - 1) / d;
  EXPECT_LT(max_abs_diff(cross_kerr(d, d, chi_t), cz(d, d)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, WeylGatesP, ::testing::Values(2, 3, 4, 5, 7));

TEST(Gates, SnapIsDiagonalUnitary) {
  const Matrix s = snap({0.1, 0.2, 0.3, 0.4});
  EXPECT_TRUE(s.is_unitary());
  EXPECT_NEAR(std::arg(s(2, 2)), 0.3, 1e-12);
  EXPECT_EQ(s(0, 1), cplx(0.0, 0.0));
}

TEST(Gates, GivensActsOnlyOnTargetLevels) {
  const Matrix g = givens(5, 1, 3, 0.7, 0.2);
  EXPECT_TRUE(g.is_unitary());
  EXPECT_EQ(g(0, 0), cplx(1.0, 0.0));
  EXPECT_EQ(g(2, 2), cplx(1.0, 0.0));
  EXPECT_EQ(g(4, 4), cplx(1.0, 0.0));
  EXPECT_NEAR(std::abs(g(1, 1)), std::cos(0.35), 1e-12);
}

TEST(Gates, GivensFullRotationSwapsLevels) {
  // theta = pi maps |j> -> -i e^{i phi} |k> (population fully transferred).
  const Matrix g = givens(4, 0, 2, kPi, 0.0);
  EXPECT_NEAR(std::abs(g(2, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(g(0, 0)), 0.0, 1e-12);
}

TEST(Gates, MixerHamiltoniansHermitian) {
  for (int d : {2, 3, 5}) {
    EXPECT_TRUE(shift_mixer_hamiltonian(d).is_hermitian());
    EXPECT_TRUE(full_mixer_hamiltonian(d).is_hermitian());
  }
}

TEST(Gates, RandomUnitaryIsHaarLikeUnitary) {
  Rng rng(77);
  for (int d : {2, 3, 6}) {
    const Matrix u = random_unitary(d, rng);
    EXPECT_TRUE(u.is_unitary(1e-9)) << "d=" << d;
  }
}

TEST(Gates, WeylPowersComposition) {
  const Matrix w = weyl(3, 2, 1);
  const Matrix expect = weyl_x(3) * weyl_x(3) * weyl_z(3);
  EXPECT_LT(max_abs_diff(w, expect), 1e-12);
}

TEST(Gates, GellMannBasisProperties) {
  for (int d : {2, 3, 4}) {
    const auto basis = gell_mann_basis(d);
    EXPECT_EQ(basis.size(), static_cast<std::size_t>(d * d - 1));
    for (std::size_t i = 0; i < basis.size(); ++i) {
      EXPECT_TRUE(basis[i].is_hermitian()) << "d=" << d << " i=" << i;
      EXPECT_NEAR(std::abs(basis[i].trace()), 0.0, 1e-12);
      for (std::size_t j = 0; j < basis.size(); ++j) {
        const double expect = (i == j) ? 2.0 : 0.0;
        EXPECT_NEAR((basis[i] * basis[j]).trace().real(), expect, 1e-10);
      }
    }
  }
}

TEST(TwoQudit, SwapGateSwaps) {
  const Matrix s = swap_gate(3);
  // |a,b> -> |b,a>: index a + 3b -> b + 3a.
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      EXPECT_EQ(s(static_cast<std::size_t>(b + 3 * a),
                  static_cast<std::size_t>(a + 3 * b)),
                cplx(1.0, 0.0));
  EXPECT_TRUE(s.is_unitary());
}

TEST(TwoQudit, MixedDimensionCsum) {
  // Control d0=2, target d1=4: |1,3> -> |1,0>.
  const Matrix cs = csum(2, 4);
  EXPECT_TRUE(cs.is_unitary());
  EXPECT_EQ(cs(static_cast<std::size_t>(1 + 2 * 0),
               static_cast<std::size_t>(1 + 2 * 3)),
            cplx(1.0, 0.0));
}

TEST(TwoQudit, CsumDaggerInverts) {
  const Matrix cs = csum(3, 3);
  EXPECT_LT(max_abs_diff(cs * csum_dagger(3, 3), Matrix::identity(9)), 1e-12);
}

TEST(TwoQudit, ControlledPowerOfX) {
  // controlled_power(d, X) should equal CSUM.
  const Matrix cp = controlled_power(3, weyl_x(3));
  EXPECT_LT(max_abs_diff(cp, csum(3, 3)), 1e-12);
}

TEST(TwoQudit, CphaseReducesToCz) {
  const int d = 4;
  EXPECT_LT(max_abs_diff(cphase(d, d, kTwoPi / d), cz(d, d)), 1e-10);
}

TEST(TwoQudit, BeamsplitterUnitary) {
  const Matrix bs = beamsplitter(4, 4, kPi / 4.0, 0.0);
  EXPECT_TRUE(bs.is_unitary(1e-9));
}

TEST(TwoQudit, BeamsplitterConservesTotalPhotonNumber) {
  const int d = 5;
  const Matrix bs = beamsplitter(d, d, 0.9, 0.3);
  // <a,b| BS |c,e> = 0 unless a+b == c+e.
  for (int a = 0; a < d; ++a) {
    for (int b = 0; b < d; ++b) {
      for (int c = 0; c < d; ++c) {
        for (int e = 0; e < d; ++e) {
          if (a + b != c + e) {
            EXPECT_LT(std::abs(bs(static_cast<std::size_t>(a + d * b),
                                  static_cast<std::size_t>(c + d * e))),
                      1e-9);
          }
        }
      }
    }
  }
}

TEST(TwoQudit, FullBeamsplitterSwapsSinglePhoton) {
  // theta = pi/2 transfers |1,0> fully to |0,1> (up to phase).
  const int d = 3;
  const Matrix bs = beamsplitter(d, d, kPi / 2.0, 0.0);
  const std::size_t in = 1;       // |1,0>
  const std::size_t out = d;      // |0,1>
  EXPECT_NEAR(std::abs(bs(out, in)), 1.0, 1e-9);
}

}  // namespace
}  // namespace qs
