#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "qrc/esn.h"
#include "qrc/readout.h"
#include "qrc/reservoir.h"
#include "qrc/tasks.h"

namespace qs {
namespace {

ReservoirConfig small_reservoir() {
  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = 4;
  cfg.coupling = 1.0;
  cfg.kappa = 0.35;
  cfg.kerr = 0.6;
  cfg.input_gain = 1.0;
  cfg.tau = 1.0;
  cfg.rk4_steps_per_tau = 10;
  return cfg;
}

TEST(Tasks, NarmaIsBoundedAndDriven) {
  Rng rng(91);
  const SeriesTask t = make_narma(2, 300, rng);
  EXPECT_EQ(t.input.size(), 300u);
  for (double y : t.target) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
  EXPECT_GT(stddev(t.target), 0.01);  // nontrivial dynamics
}

TEST(Tasks, SineSquareLabelsMatchSegments) {
  Rng rng(92);
  const SeriesTask t = make_sine_square(10, 8, rng);
  EXPECT_EQ(t.input.size(), 80u);
  for (double l : t.target) EXPECT_TRUE(l == 1.0 || l == -1.0);
}

TEST(Tasks, MackeyGlassInUnitInterval) {
  Rng rng(93);
  const SeriesTask t = make_mackey_glass(400, 10, rng);
  for (double x : t.input) {
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
  EXPECT_GT(stddev(t.input), 0.05);
}

TEST(Tasks, DelayMemoryTargets) {
  Rng rng(94);
  const SeriesTask t = make_delay_memory(3, 50, rng);
  for (int i = 3; i < 50; ++i)
    EXPECT_DOUBLE_EQ(t.target[static_cast<std::size_t>(i)],
                     t.input[static_cast<std::size_t>(i - 3)]);
}

TEST(Reservoir, FeatureCountAndNormalization) {
  OscillatorReservoir res(small_reservoir());
  EXPECT_EQ(res.num_features(), 16u);  // 4^2
  res.step(0.3);
  const auto f = res.features();
  double total = 0.0;
  for (double p : f) {
    EXPECT_GE(p, -1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Reservoir, InputChangesState) {
  OscillatorReservoir res(small_reservoir());
  res.step(0.0);
  const auto f0 = res.features();
  res.reset();
  res.step(1.0);
  const auto f1 = res.features();
  double diff = 0.0;
  for (std::size_t i = 0; i < f0.size(); ++i) diff += std::abs(f0[i] - f1[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(Reservoir, FadingMemory) {
  // Two different histories followed by the same long tail converge:
  // dissipation washes out the past (echo-state property).
  OscillatorReservoir res(small_reservoir());
  std::vector<double> tail(30, 0.2);

  res.reset();
  res.step(1.0);
  for (double u : tail) res.step(u);
  const auto fa = res.features();

  res.reset();
  res.step(-1.0);
  for (double u : tail) res.step(u);
  const auto fb = res.features();

  double diff = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) diff += std::abs(fa[i] - fb[i]);
  EXPECT_LT(diff, 0.02);
}

TEST(Reservoir, SampledFeaturesConvergeWithShots) {
  Rng rng(95);
  OscillatorReservoir res(small_reservoir());
  res.step(0.5);
  const auto exact = res.features();
  const auto few = res.features_sampled(32, rng);
  const auto many = res.features_sampled(8192, rng);
  double err_few = 0.0, err_many = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    err_few += std::abs(few[i] - exact[i]);
    err_many += std::abs(many[i] - exact[i]);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(Readout, RidgePredictsLinearTarget) {
  Rng rng(96);
  RMatrix x(60, 3);
  std::vector<double> y(60);
  for (std::size_t r = 0; r < 60; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.normal();
    y[r] = 2.0 * x(r, 0) - x(r, 2) + 0.5;  // includes bias
  }
  const Readout ro = train_readout(x, y, 1e-8);
  const auto yhat = predict(ro, x);
  EXPECT_LT(nmse(y, yhat), 1e-10);
}

TEST(Readout, EvaluateSplitsProperly) {
  Rng rng(97);
  RMatrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t r = 0; r < 100; ++r) {
    x(r, 0) = rng.normal();
    x(r, 1) = rng.normal();
    y[r] = x(r, 0);
  }
  const EvalResult ev = evaluate_readout(x, y, 10, 60, 1e-8);
  EXPECT_LT(ev.train_nmse, 1e-8);
  EXPECT_LT(ev.test_nmse, 1e-8);
}

TEST(Qrc, ReservoirLearnsNarma2) {
  // End-to-end: small quantum reservoir beats the trivial (input-only)
  // predictor on NARMA-2.
  Rng rng(98);
  const SeriesTask task = make_narma(2, 160, rng);
  OscillatorReservoir res(small_reservoir());
  const RMatrix features = res.run(task.input);
  const EvalResult ev = evaluate_readout(features, task.target, 20, 90, 1e-6);
  // Input-only baseline.
  RMatrix input_only(task.input.size(), 1);
  for (std::size_t t = 0; t < task.input.size(); ++t)
    input_only(t, 0) = task.input[t];
  const EvalResult base =
      evaluate_readout(input_only, task.target, 20, 90, 1e-6);
  EXPECT_LT(ev.test_nmse, base.test_nmse);
  EXPECT_LT(ev.test_nmse, 0.6);
}

TEST(Qrc, MoreNeuronsFromSameDynamicsHelp) {
  // The paper's neuron-scaling argument (9 levels -> 81 neurons): at a
  // FIXED physical reservoir, exposing more Fock levels as features can
  // only add information. Fewer "neurons" = coarser readout = worse NMSE.
  Rng rng(99);
  const SeriesTask task = make_narma(2, 260, rng);
  ReservoirConfig few = small_reservoir();
  few.levels = 6;
  few.feature_cutoff = 2;  // 4 neurons
  ReservoirConfig many = few;
  many.feature_cutoff = 4;  // 16 neurons
  OscillatorReservoir r_few(few), r_many(many);
  EXPECT_EQ(r_few.num_features(), 4u);
  EXPECT_EQ(r_many.num_features(), 16u);
  const EvalResult ev_few =
      evaluate_readout(r_few.run(task.input), task.target, 30, 160, 1e-5);
  const EvalResult ev_many =
      evaluate_readout(r_many.run(task.input), task.target, 30, 160, 1e-5);
  EXPECT_LT(ev_many.test_nmse, ev_few.test_nmse);
}

TEST(Esn, EchoStateProperty) {
  Rng rng(100);
  EsnConfig cfg;
  cfg.neurons = 40;
  EchoStateNetwork esn(cfg, rng);
  std::vector<double> tail(120, 0.1);
  esn.reset();
  esn.step(1.0);
  for (double u : tail) esn.step(u);
  const auto sa = esn.state();
  esn.reset();
  esn.step(-1.0);
  for (double u : tail) esn.step(u);
  const auto sb = esn.state();
  double diff = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) diff += std::abs(sa[i] - sb[i]);
  EXPECT_LT(diff, 1e-2);
}

TEST(Esn, LearnsNarma2) {
  Rng rng(101);
  const SeriesTask task = make_narma(2, 300, rng);
  EsnConfig cfg;
  cfg.neurons = 60;
  cfg.input_scale = 0.5;
  EchoStateNetwork esn(cfg, rng);
  const EvalResult ev =
      evaluate_readout(esn.run(task.input), task.target, 30, 180, 1e-6);
  EXPECT_LT(ev.test_nmse, 0.3);
}

TEST(Qrc, SignClassificationSineSquare) {
  Rng rng(102);
  const SeriesTask task = make_sine_square(16, 8, rng);
  ReservoirConfig cfg = small_reservoir();
  cfg.input_gain = 0.8;  // classification prefers a stronger drive
  cfg.kappa = 0.3;
  OscillatorReservoir res(cfg);
  const RMatrix features = res.run(task.input);
  const double acc =
      evaluate_sign_accuracy(features, task.target, 8, 72, 1e-6);
  EXPECT_GT(acc, 0.8);  // well above chance
}

}  // namespace
}  // namespace qs
