#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dynamics/trotter.h"
#include "exec/exec.h"
#include "gates/bosonic.h"
#include "gates/qudit_gates.h"
#include "gates/two_qudit.h"
#include "noise/noise_model.h"
#include "qaoa/coloring_qaoa.h"
#include "qaoa/graph.h"
#include "serve/serve.h"
#include "sqed/gauge_model.h"

namespace qs {
namespace {

// ---------------------------------------------------------------------
// The mixed 3-tenant workload: one circuit family per paper application.
// ---------------------------------------------------------------------

NoiseModel device_noise() {
  NoiseParams p;
  p.depol_2q = 0.02;
  p.loss_per_gate = 0.01;
  return NoiseModel(p);
}

/// QAOA tenant: p=1 coloring ansatz on a triangle, 3 colors (dim 27).
Circuit qaoa_circuit(double gamma) {
  Graph triangle;
  triangle.n = 3;
  triangle.edges = {{0, 1}, {1, 2}, {0, 2}};
  const ColoringQaoa qaoa(triangle, 3);
  return qaoa.build_circuit({gamma}, {0.4}, {0, 0, 0});
}

/// QRC tenant: a displacement/probe-style circuit on {2, 4} (dim 8).
Circuit qrc_circuit(double drive) {
  Circuit c(QuditSpace({2, 4}));
  c.add("F", fourier(2), {0});
  c.add("D", displacement(4, cplx(drive, 0.2)), {1});
  c.add("CSUM", csum(2, 4), {0, 1});
  c.add("F2", fourier(4), {1});
  return c;
}

/// SQED tenant: one Trotter step of a 2-rotor gauge chain (dim 9).
Circuit sqed_circuit(int steps) {
  GaugeModelParams params;
  params.d = 3;
  TrotterOptions opt;
  opt.dt = 0.2;
  opt.steps = steps;
  return trotter_circuit(gauge_chain(2, params), opt);
}

struct TenantJob {
  std::string tenant;
  int priority;
  Circuit circuit;
  std::vector<double> observable;
};

/// Per-tenant job lists with distinct priorities: the QAOA tenant sweeps
/// gamma, the QRC tenant sweeps its drive, the SQED tenant sweeps Trotter
/// depth -- plus same-circuit repeats so plan-aware batching has bursts
/// to merge.
std::vector<std::vector<TenantJob>> mixed_workload() {
  std::vector<std::vector<TenantJob>> tenants(3);
  for (int k = 0; k < 4; ++k) {
    Circuit c = qaoa_circuit(0.5 + 0.1 * (k / 2));  // two jobs per circuit
    std::vector<double> cost(c.space().dimension());
    for (std::size_t i = 0; i < cost.size(); ++i)
      cost[i] = static_cast<double>(i % 5);
    tenants[0].push_back({"qaoa", 2, std::move(c), std::move(cost)});
  }
  for (int k = 0; k < 4; ++k) {
    Circuit c = qrc_circuit(0.3 + 0.2 * (k / 2));
    std::vector<double> number(c.space().dimension());
    for (std::size_t i = 0; i < number.size(); ++i)
      number[i] = static_cast<double>(i % 4);
    tenants[1].push_back({"qrc", 1, std::move(c), std::move(number)});
  }
  for (int k = 0; k < 3; ++k) {
    Circuit c = sqed_circuit(1 + k / 2);
    std::vector<double> electric = electric_energy_diagonal(c.space());
    tenants[2].push_back({"sqed", 0, std::move(c), std::move(electric)});
  }
  return tenants;
}

JobSpec make_spec(const TenantJob& job) {
  return JobSpec(job.circuit)
      .with_tenant(job.tenant)
      .with_priority(job.priority)
      .with_shots(96)
      .with_observable("obs", job.observable);
}

/// Runs the workload through a service, submitting each tenant's jobs in
/// order from its own thread when `concurrent_submitters` is set, and
/// returns outcomes grouped as [tenant][job index].
std::vector<std::vector<JobOutcome>> run_workload(
    const Backend& backend, const ServiceOptions& options,
    const std::vector<std::vector<TenantJob>>& tenants,
    bool concurrent_submitters) {
  JobService service(backend, options);
  std::vector<std::vector<JobHandle>> handles(tenants.size());
  auto submit_tenant = [&](std::size_t t) {
    for (const TenantJob& job : tenants[t])
      handles[t].push_back(service.submit(make_spec(job)));
  };
  if (concurrent_submitters) {
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < tenants.size(); ++t)
      submitters.emplace_back(submit_tenant, t);
    for (std::thread& s : submitters) s.join();
  } else {
    for (std::size_t t = 0; t < tenants.size(); ++t) submit_tenant(t);
  }
  std::vector<std::vector<JobOutcome>> outcomes(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t)
    for (const JobHandle& h : handles[t]) outcomes[t].push_back(h.wait());
  service.shutdown(ShutdownMode::kDrain);
  return outcomes;
}

// The acceptance-criterion test: N concurrent submitter threads over K
// workers produce results bitwise identical to serial single-worker
// submission -- queue order, batching, and worker count never leak into
// results.
TEST(ServeDeterminism, ConcurrentMixedWorkloadMatchesSerialBitwise) {
  const TrajectoryBackend backend{device_noise()};
  const auto tenants = mixed_workload();

  ServiceOptions serial;
  serial.workers = 1;
  serial.threads_per_worker = 1;
  serial.max_batch = 1;  // one job per dispatch: the naive reference
  const auto reference = run_workload(backend, serial, tenants, false);

  ServiceOptions pooled;
  pooled.workers = 3;
  pooled.threads_per_worker = 2;
  pooled.max_batch = 8;
  const auto concurrent = run_workload(backend, pooled, tenants, true);

  ASSERT_EQ(reference.size(), concurrent.size());
  for (std::size_t t = 0; t < reference.size(); ++t) {
    ASSERT_EQ(reference[t].size(), concurrent[t].size());
    for (std::size_t j = 0; j < reference[t].size(); ++j) {
      const JobOutcome& a = reference[t][j];
      const JobOutcome& b = concurrent[t][j];
      ASSERT_EQ(a.status, JobStatus::kDone);
      ASSERT_EQ(b.status, JobStatus::kDone);
      // Same tenant-stream seed regardless of global interleaving...
      EXPECT_EQ(a.result.seed, b.result.seed);
      // ...and bitwise identical payloads, not approximately equal.
      EXPECT_EQ(a.result.counts, b.result.counts);
      ASSERT_EQ(a.result.probabilities.size(), b.result.probabilities.size());
      for (std::size_t i = 0; i < a.result.probabilities.size(); ++i)
        EXPECT_EQ(a.result.probabilities[i], b.result.probabilities[i]);
      EXPECT_EQ(a.result.expectation("obs"), b.result.expectation("obs"));
    }
  }
}

TEST(ServeDeterminism, TenantSeedStreamsAreOrderedAndExplicitSeedsPass) {
  const StateVectorBackend backend;
  ServiceOptions options;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle a1 = service.submit(JobSpec(qrc_circuit(0.1)).with_tenant("a"));
  JobHandle b1 = service.submit(JobSpec(qrc_circuit(0.1)).with_tenant("b"));
  JobHandle a2 = service.submit(JobSpec(qrc_circuit(0.1)).with_tenant("a"));
  JobHandle ex =
      service.submit(JobSpec(qrc_circuit(0.1)).with_tenant("a").with_seed(7));
  // Streams are per tenant: a's seeds differ from each other and from b's.
  EXPECT_NE(a1.seed(), a2.seed());
  EXPECT_NE(a1.seed(), b1.seed());
  EXPECT_EQ(ex.seed(), 7u);

  // A second service with the same root seed reproduces the streams even
  // though the tenants interleave differently.
  JobService replay(backend, options);
  JobHandle b1r =
      replay.submit(JobSpec(qrc_circuit(0.1)).with_tenant("b"));
  JobHandle a1r =
      replay.submit(JobSpec(qrc_circuit(0.1)).with_tenant("a"));
  EXPECT_EQ(a1.seed(), a1r.seed());
  EXPECT_EQ(b1.seed(), b1r.seed());
  service.shutdown(ShutdownMode::kAbort);
  replay.shutdown(ShutdownMode::kAbort);
}

// ---------------------------------------------------------------------
// FairShareQueue scheduling policy (unit level).
// ---------------------------------------------------------------------

using Record = std::shared_ptr<detail::JobRecord>;

Record make_record(JobId id, const std::string& tenant, int priority,
                   std::uint64_t plan_key, double deadline_seconds = 0.0) {
  Circuit c(QuditSpace::uniform(1, 2));
  c.add("F", fourier(2), {0});
  return std::make_shared<detail::JobRecord>(
      id, tenant, priority, plan_key, ExecutionRequest(std::move(c)),
      std::chrono::steady_clock::now(), deadline_seconds);
}

std::vector<JobId> drain_ids(FairShareQueue& queue, std::size_t max_batch) {
  std::vector<JobId> ids;
  for (;;) {
    auto pop = queue.pop_batch(max_batch, std::chrono::steady_clock::now());
    if (pop.batch.empty() && pop.expired.empty()) break;
    for (const Record& r : pop.batch) ids.push_back(r->id);
  }
  return ids;
}

TEST(FairShareQueue, RoundRobinsTenantsWithinAPriority) {
  FairShareQueue queue;
  // Heavy tenant a (4 jobs), light tenants b and c (1 each); distinct
  // plan keys so nothing merges into batches.
  queue.push(make_record(1, "a", 0, 101));
  queue.push(make_record(2, "a", 0, 102));
  queue.push(make_record(3, "a", 0, 103));
  queue.push(make_record(4, "a", 0, 104));
  queue.push(make_record(5, "b", 0, 105));
  queue.push(make_record(6, "c", 0, 106));
  // a cannot starve b and c: they are served on a's first lap.
  EXPECT_EQ(drain_ids(queue, 1),
            (std::vector<JobId>{1, 5, 6, 2, 3, 4}));
}

TEST(FairShareQueue, HigherPriorityPreemptsFairShare) {
  FairShareQueue queue;
  queue.push(make_record(1, "a", 0, 101));
  queue.push(make_record(2, "a", 0, 102));
  queue.push(make_record(3, "b", 5, 103));  // arrives later, runs first
  EXPECT_EQ(drain_ids(queue, 1), (std::vector<JobId>{3, 1, 2}));
}

TEST(FairShareQueue, BatchesSamePlanKeyAcrossTenants) {
  FairShareQueue queue;
  queue.push(make_record(1, "a", 0, 77));
  queue.push(make_record(2, "b", 0, 77));
  queue.push(make_record(3, "c", 0, 88));
  queue.push(make_record(4, "a", 0, 77));
  auto pop = queue.pop_batch(8, std::chrono::steady_clock::now());
  // Seed job 1 pulls every queued key-77 job along, in submission order.
  std::vector<JobId> ids;
  for (const Record& r : pop.batch) ids.push_back(r->id);
  EXPECT_EQ(ids, (std::vector<JobId>{1, 2, 4}));
  for (const Record& r : pop.batch)
    EXPECT_EQ(r->current_status(), JobStatus::kRunning);
  // Job 3 (key 88) is untouched and pops next.
  EXPECT_EQ(drain_ids(queue, 8), (std::vector<JobId>{3}));
}

TEST(FairShareQueue, MaxBatchCapsTheMerge) {
  FairShareQueue queue;
  for (JobId id = 1; id <= 5; ++id)
    queue.push(make_record(id, "a", 0, 42));
  auto pop = queue.pop_batch(2, std::chrono::steady_clock::now());
  EXPECT_EQ(pop.batch.size(), 2u);
  EXPECT_EQ(drain_ids(queue, 2), (std::vector<JobId>{3, 4, 5}));
}

TEST(FairShareQueue, NoRecordOutlivesItsQueueLifetime) {
  // Regression: every exit path -- unbatched dispatch (max_batch == 1),
  // batched dispatch, expiry, and cancellation -- must erase the record
  // from BOTH index structures, or a long-running service leaks one
  // circuit copy per job.
  FairShareQueue queue;
  queue.push(make_record(1, "a", 0, 50));        // dispatched, no mates
  queue.push(make_record(2, "a", 0, 60));        // gathered batch mate
  queue.push(make_record(3, "b", 0, 60));        // batch seed
  queue.push(make_record(4, "b", 0, 70, 1e-9));  // expires in its lane
  Record dropped = make_record(5, "c", 0, 60);   // cancelled
  queue.push(dropped);
  EXPECT_EQ(queue.indexed_records(), 5u);

  {
    qs::MutexLock lock(dropped->mutex);
    dropped->status = JobStatus::kCancelled;
  }
  queue.remove(dropped);
  EXPECT_EQ(queue.indexed_records(), 4u);

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  while (true) {
    auto pop = queue.pop_batch(8, std::chrono::steady_clock::now());
    if (pop.batch.empty() && pop.expired.empty()) break;
  }
  EXPECT_EQ(queue.indexed_records(), 0u);

  // The unbatched configuration (max_batch == 1) skips the gather loop
  // entirely; the seed's plan-key entry must still be reclaimed.
  queue.push(make_record(6, "a", 0, 90));
  EXPECT_EQ(queue.pop_batch(1, std::chrono::steady_clock::now()).batch.size(),
            1u);
  EXPECT_EQ(queue.indexed_records(), 0u);
}

TEST(FairShareQueue, ExpiredJobsAreDivertedNotDispatched) {
  FairShareQueue queue;
  queue.push(make_record(1, "a", 0, 1, 1e-9));  // expires immediately
  queue.push(make_record(2, "a", 0, 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto pop = queue.pop_batch(4, std::chrono::steady_clock::now());
  ASSERT_EQ(pop.expired.size(), 1u);
  EXPECT_EQ(pop.expired[0]->id, 1u);
  EXPECT_EQ(pop.expired[0]->current_status(), JobStatus::kExpired);
  ASSERT_EQ(pop.batch.size(), 1u);
  EXPECT_EQ(pop.batch[0]->id, 2u);
}

// ---------------------------------------------------------------------
// Service lifecycle: batching telemetry, cancel, deadlines, shutdown.
// ---------------------------------------------------------------------

TEST(JobService, BurstOfIdenticalCircuitsBatchesAndCompilesOnce) {
  const TrajectoryBackend backend{device_noise()};
  ServiceOptions options;
  options.workers = 2;
  options.max_batch = 16;
  options.start_paused = true;  // let the burst accumulate, then release
  JobService service(backend, options);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 12; ++i)
    handles.push_back(
        service.submit(JobSpec(qaoa_circuit(0.5)).with_shots(16)));
  EXPECT_EQ(service.telemetry().queued, 12u);
  service.resume();
  for (const JobHandle& h : handles)
    EXPECT_EQ(h.wait().status, JobStatus::kDone);
  service.shutdown(ShutdownMode::kDrain);

  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.submitted, 12u);
  EXPECT_EQ(t.completed, 12u);
  EXPECT_EQ(t.queued, 0u);
  EXPECT_EQ(t.running, 0u);
  // Plan-aware batching: far fewer dispatches than jobs, and the circuit
  // was compiled exactly once for the whole burst.
  EXPECT_LT(t.batches, 12u);
  EXPECT_GT(t.largest_batch, 1u);
  EXPECT_EQ(t.batched_jobs, 12u);
  EXPECT_EQ(t.plan_cache_misses, 1u);
  EXPECT_GE(t.plan_cache_hits, t.batches - 1);
  EXPECT_GE(t.queue_seconds_total, 0.0);
  EXPECT_EQ(t.results_stored, 12u);
}

TEST(JobService, HardwareTargetedBurstTranspilesOnceAndBatches) {
  // A burst of same-shape hardware-targeted jobs across tenants: the
  // (circuit, processor, transpile options) triple is folded into the
  // plan-sharing key, so the burst batches together, transpiles exactly
  // once through the shared TranspileCache, and compiles one plan from
  // the physical circuit.
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const StateVectorBackend backend;
  ServiceOptions options;
  options.workers = 2;
  options.max_batch = 16;
  options.start_paused = true;
  JobService service(backend, options);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 10; ++i)
    handles.push_back(service.submit(JobSpec(qaoa_circuit(0.5))
                                         .with_tenant(i % 2 ? "a" : "b")
                                         .with_compilation(proc)
                                         .with_shots(16)));
  service.resume();
  std::vector<ExecutionResult> results;
  for (const JobHandle& h : handles) results.push_back(h.result());
  service.shutdown(ShutdownMode::kDrain);

  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.completed, 10u);
  EXPECT_GT(t.largest_batch, 1u);
  EXPECT_EQ(t.transpile_cache_misses, 1u);
  EXPECT_GE(t.transpile_cache_hits, t.batches - 1);
  EXPECT_EQ(t.plan_cache_misses, 1u);
  // Every result ran the routed physical register (one site per mode)
  // and reports the transpile summary.
  for (const ExecutionResult& r : results) {
    EXPECT_EQ(r.probabilities.size(), 27u);  // 3 modes x d = 3
    EXPECT_FALSE(r.compile_summary.empty());
  }

  // Jobs targeting a different device must NOT share the batch key: the
  // key folds the processor fingerprint.
  ProcessorConfig other = cfg;
  other.mode_t1 = 2e-3;
  const Processor proc2(other);
  ServiceOptions opts2;
  opts2.workers = 1;
  opts2.start_paused = true;
  JobService split(backend, opts2);
  const JobHandle x =
      split.submit(JobSpec(qaoa_circuit(0.5)).with_compilation(proc));
  const JobHandle y =
      split.submit(JobSpec(qaoa_circuit(0.5)).with_compilation(proc2));
  split.resume();
  x.wait();
  y.wait();
  split.shutdown(ShutdownMode::kDrain);
  const ServiceTelemetry t2 = split.telemetry();
  EXPECT_EQ(t2.transpile_cache_misses, 2u);
  EXPECT_EQ(t2.largest_batch, 1u);
}

TEST(JobService, ParametricSweepTranspilesAndLowersExactlyOnce) {
  // The parametric-compilation acceptance pin: a 100-point two-tenant
  // QAOA angle sweep over one symbolic circuit, hardware-targeted,
  // transpiles exactly once and lowers exactly one plan -- the telemetry
  // counters say so -- and every point's result is bitwise identical to
  // submitting the fully-bound circuit built from scratch.
  Graph triangle;
  triangle.n = 3;
  triangle.edges = {{0, 1}, {1, 2}, {0, 2}};
  const ColoringQaoa qaoa(triangle, 3);
  const std::vector<int> offsets = {0, 0, 0};
  const Circuit symbolic = qaoa.parametric_circuit(1, offsets);
  const std::vector<double> cost = qaoa.cost_diagonal(offsets);

  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const StateVectorBackend backend;

  constexpr std::size_t kPoints = 100;
  auto angles_of = [](std::size_t k) {
    const double t = static_cast<double>(k) / kPoints;
    return std::vector<double>{4.0 * t, 2.0 * (1.0 - t)};
  };

  ServiceOptions options;
  options.workers = 2;
  options.max_batch = 16;
  options.start_paused = true;  // accumulate the full sweep, then release
  JobService service(backend, options);
  std::vector<JobHandle> handles;
  for (std::size_t k = 0; k < kPoints; ++k)
    handles.push_back(service.submit(JobSpec(symbolic)
                                         .with_tenant(k % 2 ? "qaoa-a"
                                                            : "qaoa-b")
                                         .with_parameters(angles_of(k))
                                         .with_compilation(proc)
                                         .with_shots(16)
                                         .with_seed(1000 + k)
                                         .with_observable("cost", cost)));
  service.resume();
  std::vector<ExecutionResult> swept;
  for (const JobHandle& h : handles) swept.push_back(h.result());
  service.shutdown(ShutdownMode::kDrain);

  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.completed, kPoints);
  // The whole sweep shares one structural plan key: one transpile, one
  // lowering, everything else hits -- regardless of bindings or tenants.
  EXPECT_EQ(t.transpile_cache_misses, 1u);
  EXPECT_EQ(t.plan_cache_misses, 1u);
  EXPECT_GT(t.largest_batch, 1u);  // bindings batch together

  // From-scratch reference: the same points as concrete bound circuits
  // (distinct fingerprints, so this service recompiles per point).
  ServiceOptions ref_options;
  ref_options.workers = 1;
  ref_options.max_batch = 1;
  JobService reference(backend, ref_options);
  std::vector<JobHandle> ref_handles;
  for (std::size_t k = 0; k < kPoints; ++k) {
    const std::vector<double> angles = angles_of(k);
    ref_handles.push_back(
        reference.submit(JobSpec(qaoa.build_circuit({angles[0]}, {angles[1]},
                                                    offsets))
                             .with_compilation(proc)
                             .with_shots(16)
                             .with_seed(1000 + k)
                             .with_observable("cost", cost)));
  }
  for (std::size_t k = 0; k < kPoints; ++k) {
    const JobOutcome ref = ref_handles[k].wait();
    ASSERT_EQ(ref.status, JobStatus::kDone);
    EXPECT_EQ(swept[k].counts, ref.result.counts);
    EXPECT_EQ(swept[k].expectation("cost"), ref.result.expectation("cost"));
    ASSERT_EQ(swept[k].probabilities.size(), ref.result.probabilities.size());
    for (std::size_t i = 0; i < ref.result.probabilities.size(); ++i)
      EXPECT_EQ(swept[k].probabilities[i], ref.result.probabilities[i])
          << "point " << k << " index " << i;
  }
  reference.shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(reference.telemetry().transpile_cache_misses, kPoints);
}

TEST(JobService, CancelBeforeDispatchWinsAfterDispatchLoses) {
  const StateVectorBackend backend;
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle keep = service.submit(JobSpec(qrc_circuit(0.2)).with_shots(8));
  JobHandle drop = service.submit(JobSpec(qrc_circuit(0.9)).with_shots(8));
  EXPECT_EQ(drop.status(), JobStatus::kQueued);
  EXPECT_TRUE(drop.cancel());
  EXPECT_FALSE(drop.cancel());  // already cancelled
  service.resume();
  EXPECT_EQ(keep.wait().status, JobStatus::kDone);
  EXPECT_EQ(drop.status(), JobStatus::kCancelled);
  EXPECT_THROW(drop.result(), std::runtime_error);
  EXPECT_FALSE(keep.cancel());  // terminal jobs cannot be cancelled
  service.shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(service.telemetry().cancelled, 1u);
  EXPECT_EQ(service.telemetry().completed, 1u);
}

TEST(JobService, DeadlineExpiresQueuedJobs) {
  const StateVectorBackend backend;
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle late = service.submit(
      JobSpec(qrc_circuit(0.3)).with_shots(8).with_deadline(1e-6));
  JobHandle fine = service.submit(JobSpec(qrc_circuit(0.4)).with_shots(8));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.resume();
  const JobOutcome expired = late.wait();
  EXPECT_EQ(expired.status, JobStatus::kExpired);
  EXPECT_FALSE(expired.error.empty());
  EXPECT_EQ(fine.wait().status, JobStatus::kDone);
  service.shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(service.telemetry().expired, 1u);
}

TEST(JobService, ShutdownDrainRunsEverythingAbortCancelsQueued) {
  const StateVectorBackend backend;
  {
    ServiceOptions options;
    options.workers = 2;
    options.start_paused = true;
    JobService service(backend, options);
    std::vector<JobHandle> handles;
    for (int i = 0; i < 6; ++i)
      handles.push_back(
          service.submit(JobSpec(qrc_circuit(0.5)).with_shots(4)));
    service.shutdown(ShutdownMode::kDrain);  // resumes, runs all, stops
    for (const JobHandle& h : handles)
      EXPECT_EQ(h.status(), JobStatus::kDone);
    EXPECT_THROW(service.submit(JobSpec(qrc_circuit(0.5))),
                 std::runtime_error);
  }
  {
    ServiceOptions options;
    options.workers = 2;
    options.start_paused = true;
    JobService service(backend, options);
    std::vector<JobHandle> handles;
    for (int i = 0; i < 6; ++i)
      handles.push_back(
          service.submit(JobSpec(qrc_circuit(0.5)).with_shots(4)));
    service.shutdown(ShutdownMode::kAbort);
    for (const JobHandle& h : handles)
      EXPECT_EQ(h.status(), JobStatus::kCancelled);
    EXPECT_EQ(service.telemetry().cancelled, 6u);
  }
}

TEST(JobService, PauseAfterShutdownIsANoOp) {
  // pause() racing shutdown(kDrain) must not strand draining workers.
  const StateVectorBackend backend;
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle h = service.submit(JobSpec(qrc_circuit(0.7)).with_shots(4));
  std::thread racer([&] { service.shutdown(ShutdownMode::kDrain); });
  service.pause();  // may land before or after the drain flag; must not
                    // stop the drain from finishing either way
  racer.join();
  EXPECT_EQ(h.status(), JobStatus::kDone);
}

TEST(JobService, QueueBoundRejectsOverflow) {
  const StateVectorBackend backend;
  ServiceOptions options;
  options.workers = 1;
  options.max_queued = 2;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle a = service.submit(JobSpec(qrc_circuit(0.1)));
  JobHandle b = service.submit(JobSpec(qrc_circuit(0.2)));
  EXPECT_THROW(service.submit(JobSpec(qrc_circuit(0.3))),
               std::runtime_error);
  EXPECT_TRUE(a.cancel());  // frees a slot
  JobHandle c = service.submit(JobSpec(qrc_circuit(0.4)));
  service.shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(b.status(), JobStatus::kDone);
  EXPECT_EQ(c.status(), JobStatus::kDone);
}

TEST(JobService, FailedJobsSurfaceTheErrorAndSpareBatchMates) {
  // DensityMatrixBackend rejects oversized registers; a batch mixing a
  // poisoned job (tiny max_dim) with healthy ones must fail only the
  // poisoned one.
  const DensityMatrixBackend backend;
  ServiceOptions options;
  options.workers = 1;
  options.max_batch = 8;
  options.start_paused = true;
  JobService service(backend, options);
  JobHandle good1 = service.submit(JobSpec(qrc_circuit(0.2)).with_shots(4));
  JobHandle poisoned =
      service.submit(JobSpec(qrc_circuit(0.2)).with_max_dim(2));
  JobHandle good2 = service.submit(JobSpec(qrc_circuit(0.2)).with_shots(4));
  service.resume();
  EXPECT_EQ(good1.wait().status, JobStatus::kDone);
  EXPECT_EQ(good2.wait().status, JobStatus::kDone);
  const JobOutcome failure = poisoned.wait();
  EXPECT_EQ(failure.status, JobStatus::kFailed);
  EXPECT_FALSE(failure.error.empty());
  EXPECT_THROW(poisoned.result(), std::runtime_error);
  service.shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(service.telemetry().failed, 1u);
  EXPECT_EQ(service.telemetry().completed, 2u);
}

TEST(JobService, FetchServesResultsAfterHandlesAreGone) {
  const StateVectorBackend backend;
  JobService service(backend, {});
  JobId id = 0;
  {
    JobHandle h = service.submit(JobSpec(qrc_circuit(0.6)).with_shots(32));
    id = h.id();
    EXPECT_EQ(h.wait().status, JobStatus::kDone);
  }
  const auto fetched = service.fetch(id);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->total_counts(), 32u);
  EXPECT_FALSE(service.fetch(id + 999).has_value());
  service.shutdown(ShutdownMode::kDrain);
}

// ---------------------------------------------------------------------
// Lock-order contract hammer (core -> record, see thread_annotations.h).
// ---------------------------------------------------------------------

TEST(JobService, LockOrderHammerWaitCancelAbortRecalibrate) {
  // Stresses the documented core -> record lock order from every side at
  // once: client threads block in JobHandle::wait (record mutex), others
  // race cancel() (core -> record nesting), a recalibration storm churns
  // the core mutex + calibration store, telemetry polls the core mutex,
  // and shutdown(kAbort) lands mid-flight, cancelling whatever is still
  // queued (core mutex, then every queued record's mutex). Under TSan
  // (full-suite CI job) and the clang -Wthread-safety build, an order
  // violation or unlocked guarded access here fails the build or the
  // run -- this test pins the contract, not a particular schedule.
  ProcessorConfig cfg;
  cfg.num_cavities = 3;
  cfg.modes_per_cavity = 1;
  cfg.levels_per_mode = 3;
  const Processor proc(cfg);
  const StateVectorBackend backend;
  // Tracing rides along: the hammer doubles as the span-coverage and
  // timestamp-monotonicity stress (assertions after shutdown).
  obs::TracerOptions tracer_options;
  tracer_options.shards = 4;
  tracer_options.capacity_per_shard = 16384;
  obs::Tracer tracer(tracer_options);
  ServiceOptions options;
  options.workers = 3;
  options.max_batch = 4;
  options.start_paused = true;  // build a backlog for abort to hit
  options.tracer = &tracer;
  JobService service(backend, options);

  std::vector<JobHandle> handles;
  for (int i = 0; i < 60; ++i)
    handles.push_back(service.submit(JobSpec(qaoa_circuit(0.5))
                                         .with_tenant(i % 2 ? "a" : "b")
                                         .with_compilation(proc)
                                         .with_shots(8)));

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    for (std::size_t i = 0; i < handles.size(); i += 3)
      handles[i].cancel();
  });
  std::thread recalibrator([&] {
    for (int e = 0; e < 8; ++e)
      service.recalibrate(CalibrationSnapshot::nominal(proc));
  });
  std::thread poller([&] {
    while (!stop.load()) {
      // Mid-flight balance invariant: telemetry is ONE registry cut, so
      // the lifecycle books must balance exactly in every poll, not
      // just after quiescence (the historical torn-read regression).
      const ServiceTelemetry t = service.telemetry();
      EXPECT_EQ(t.completed + t.failed + t.cancelled + t.expired +
                    t.queued + t.running,
                t.submitted);
    }
  });
  std::vector<std::thread> waiters;
  for (std::size_t t = 0; t < 4; ++t)
    waiters.emplace_back([&, t] {
      for (std::size_t i = t; i < handles.size(); i += 4)
        (void)handles[i].wait();
    });

  service.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.shutdown(ShutdownMode::kAbort);  // races in-flight batches

  canceller.join();
  recalibrator.join();
  for (std::thread& w : waiters) w.join();
  stop = true;
  poller.join();

  // Every job is terminal and the books balance exactly.
  for (const JobHandle& h : handles) EXPECT_TRUE(is_terminal(h.status()));
  const ServiceTelemetry t = service.telemetry();
  EXPECT_EQ(t.submitted, handles.size());
  EXPECT_EQ(t.completed + t.failed + t.cancelled + t.expired,
            handles.size());
  EXPECT_EQ(t.failed, 0u);
  EXPECT_EQ(t.queued, 0u);
  EXPECT_EQ(t.running, 0u);
  EXPECT_EQ(t.recalibrations, 8u);
  // Submission raced no recalibration epochs backwards.
  EXPECT_EQ(t.calib_epoch, 8u);

  // --- span coverage + ordering under the same hammer -------------------
  EXPECT_EQ(tracer.dropped(), 0u);  // rings sized to retain everything
  const std::vector<obs::Span> spans = tracer.spans();
  // Timestamps are monotone within every span, and the deterministic
  // sort is by start time: monotone across the merged list too.
  std::uint64_t last_start = 0;
  for (const obs::Span& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    EXPECT_GE(s.start_ns, last_start);
    last_start = s.start_ns;
  }
  // Index per job: which phases were recorded, and the kJob root span.
  std::map<std::uint64_t, std::set<obs::Phase>> phases;
  std::map<std::uint64_t, obs::Span> roots;
  for (const obs::Span& s : spans) {
    phases[s.job].insert(s.phase);
    if (s.phase == obs::Phase::kJob) roots[s.job] = s;
  }
  std::size_t done_jobs = 0;
  for (const JobHandle& h : handles) {
    // Every submitted job carries a kSubmit span.
    EXPECT_TRUE(phases[h.id()].count(obs::Phase::kSubmit)) << h.id();
    if (h.status() != JobStatus::kDone) continue;
    ++done_jobs;
    // Completed jobs cover the full lifecycle: queue wait, execution,
    // store insert, and the kJob root.
    for (const obs::Phase p :
         {obs::Phase::kQueue, obs::Phase::kExecute, obs::Phase::kStore,
          obs::Phase::kJob})
      EXPECT_TRUE(phases[h.id()].count(p))
          << "job " << h.id() << " missing phase "
          << obs::phase_name(p);
    // Parent/child ordering: every job-phase span nests inside the
    // job's kJob root interval.
    ASSERT_TRUE(roots.count(h.id()));
    const obs::Span& root = roots[h.id()];
    for (const obs::Span& s : spans) {
      if (s.job != h.id() || s.phase == obs::Phase::kJob ||
          s.phase == obs::Phase::kSubmit)
        continue;  // kSubmit starts before the root by design
      EXPECT_GE(s.start_ns, root.start_ns) << obs::phase_name(s.phase);
      EXPECT_LE(s.end_ns, root.end_ns) << obs::phase_name(s.phase);
    }
  }
  EXPECT_GT(done_jobs, 0u);  // the hammer must have completed something
  // Per-tenant latency percentiles are queryable, and every finished
  // (done or failed) job was observed in exactly one tenant histogram.
  const TenantLatency lat_a = service.tenant_latency("a");
  const TenantLatency lat_b = service.tenant_latency("b");
  EXPECT_EQ(lat_a.count + lat_b.count, t.completed + t.failed);
  if (lat_a.count > 0) {
    EXPECT_GT(lat_a.p50, 0.0);
    EXPECT_LE(lat_a.p50, lat_a.p95);
    EXPECT_LE(lat_a.p95, lat_a.p99);
  }
  // The Chrome export of the hammer's trace is well-formed JSON prose.
  std::ostringstream json;
  tracer.export_chrome_json(json);
  EXPECT_NE(json.str().find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------
// ResultStore bounds.
// ---------------------------------------------------------------------

ExecutionResult dummy_result(std::size_t shots) {
  ExecutionResult r;
  r.backend = "test";
  r.shots = shots;
  return r;
}

TEST(ResultStore, TtlEvictsOldEntries) {
  using Clock = ResultStore::Clock;
  ResultStore store(8, 10.0);  // 10 s TTL
  const Clock::time_point t0 = Clock::now();
  store.put(1, dummy_result(100), t0);
  store.put(2, dummy_result(200), t0 + std::chrono::seconds(6));
  ASSERT_TRUE(store.get(1, t0 + std::chrono::seconds(9)).has_value());
  // At t0+11s entry 1 is past its TTL, entry 2 is not.
  EXPECT_FALSE(store.get(1, t0 + std::chrono::seconds(11)).has_value());
  const auto live = store.get(2, t0 + std::chrono::seconds(11));
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->shots, 200u);
  EXPECT_EQ(store.expired(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStore, CapacityEvictsOldestFirst) {
  using Clock = ResultStore::Clock;
  ResultStore store(3, 1000.0);
  const Clock::time_point t0 = Clock::now();
  for (JobId id = 1; id <= 5; ++id) store.put(id, dummy_result(id), t0);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evicted(), 2u);
  EXPECT_FALSE(store.get(1, t0).has_value());
  EXPECT_FALSE(store.get(2, t0).has_value());
  for (JobId id = 3; id <= 5; ++id)
    EXPECT_TRUE(store.get(id, t0).has_value());
  // Re-putting an id refreshes it instead of duplicating.
  store.put(4, dummy_result(44), t0);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.get(4, t0)->shots, 44u);
}

}  // namespace
}  // namespace qs
