// E6 -- Qudit QRAC scaling (paper SS II-B, citing [22], [23]): packing
// 50+ coloring variables into a handful of qudits via observable
// encodings, "though no studies yet generalize these quantum optimization
// algorithms to qudits" -- this bench is that generalization.
//
// Reported: approximation quality of the qudit QRAC relaxation (raw
// rounding and with the standard local-search post-processing) against
// random and greedy baselines, plus the mode-count comparison with the
// direct one-hot encoding.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_qrac_scaling] E6: 50+ node coloring on few qudits\n\n");

  ConsoleTable table({"N", "d", "qudits", "relaxed obj", "raw score",
                      "final score", "greedy", "random", "edges"});
  Rng rng(13);
  for (int n : {30, 50, 80}) {
    const Graph g = random_regular_graph(n, 3, rng);
    QracOptions opt;
    opt.qudit_dim = 10;
    opt.colors = 3;
    opt.spsa_iters = 250;
    const QracResult res = solve_qrac_coloring(g, opt, rng);
    const int greedy = colored_edges(g, greedy_coloring(g, 3));
    const double random_score = random_coloring_mean(g, 3, 400, rng);
    table.add_row({fmt_int(n), fmt_int(opt.qudit_dim),
                   fmt_int(res.qudits_used), fmt(res.relaxed_objective, 1),
                   fmt_int(res.raw_colored_edges),
                   fmt_int(res.colored_edges), fmt_int(greedy),
                   fmt(random_score, 1),
                   fmt_int(static_cast<long long>(g.num_edges()))});
  }
  table.print(std::cout);

  std::printf("\nresource comparison (N = 50, 3 colors):\n");
  Rng rng2(14);
  const Processor proc = Processor::forecast_device();
  const AppEstimate direct = estimate_coloring(50, 3, proc, rng2);
  const AppEstimate qrac = estimate_coloring_qrac(50, 3, 10, proc);
  ConsoleTable res_table({"encoding", "modes needed", "fits device?"});
  res_table.add_row({"one-hot qudits", fmt_int(direct.modes_needed),
                     direct.modes_needed <= proc.num_modes() ? "yes" : "no"});
  res_table.add_row({"QRAC qudits", fmt_int(qrac.modes_needed),
                     qrac.modes_needed <= proc.num_modes() ? "yes" : "no"});
  res_table.print(std::cout);
  return 0;
}
