// Scenario-engine benchmarks (google-benchmark): end-to-end virtual-time
// replay throughput, and the flight recorder's overhead on a serve-layer
// burst.
//
// BM_ScenarioEngine drives the full tick loop -- seeded arrivals, storm
// publishes, pause windows, canonical journal export -- and reports
// jobs/sec, so CI tracks how fast a 10^5-job scenario replays.
//
// BM_ScenarioBurst_{Plain,Journaled} are the overhead pair: the same
// burst with and without a Journal attached. tools/bench_diff.py holds
// the journaled variant within 5% of the plain one intra-run (see
// OVERHEAD_PAIRS), the same budget the tracer pair carries: lifecycle
// recording must stay cheap enough to leave on.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "exec/state_vector_backend.h"
#include "obs/journal.h"
#include "serve/serve.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace {

using namespace qs;

sim::TenantSpec burst_tenant() {
  sim::TenantSpec tenant;
  tenant.name = "bench";
  tenant.kind = sim::JobKind::kQrc;
  tenant.shots = 16;
  tenant.variants = 4;
  return tenant;
}

/// Pushes `jobs` reservoir-probe jobs through a paused service, then
/// releases and drains -- with or without the flight recorder attached.
void run_burst(benchmark::State& state, bool journaled) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  const StateVectorBackend backend;
  const sim::TenantSpec tenant = burst_tenant();
  for (auto _ : state) {
    obs::Journal journal;
    ServiceOptions options;
    options.workers = 4;
    options.start_paused = true;
    if (journaled) options.journal = &journal;
    JobService service(backend, options);
    std::vector<JobHandle> handles;
    handles.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i)
      handles.push_back(service.submit(sim::make_job(tenant, i % 4)));
    service.resume();
    for (const JobHandle& handle : handles) handle.wait();
    service.shutdown(ShutdownMode::kDrain);
    if (journaled) benchmark::DoNotOptimize(journal.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}

void BM_ScenarioBurst_Plain(benchmark::State& state) {
  run_burst(state, /*journaled=*/false);
}
BENCHMARK(BM_ScenarioBurst_Plain)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ScenarioBurst_Journaled(benchmark::State& state) {
  run_burst(state, /*journaled=*/true);
}
BENCHMARK(BM_ScenarioBurst_Journaled)->Arg(256)->Unit(benchmark::kMillisecond);

/// Full scenario engine: standard 4-tenant mix scaled to range(0) jobs,
/// including storms, the cancel flood, pause windows, and the canonical
/// journal export that the replay contract diffs.
void BM_ScenarioEngine(benchmark::State& state) {
  sim::WorkloadSpec spec = sim::WorkloadSpec::standard(11, 40);
  spec.scale_to_jobs(static_cast<std::uint64_t>(state.range(0)));
  const StateVectorBackend backend;
  sim::ScenarioOptions options;
  options.workers = 4;
  std::uint64_t submitted = 0;
  for (auto _ : state) {
    obs::Journal journal;
    const sim::ScenarioReport report =
        sim::run_scenario(backend, spec, journal, options);
    submitted += report.submitted;
    benchmark::DoNotOptimize(journal.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(submitted));
}
BENCHMARK(BM_ScenarioEngine)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace
