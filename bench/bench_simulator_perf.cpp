// E11 -- Simulator microbenchmarks (google-benchmark): gate application,
// channel application, and Lindblad stepping across dimensions. Supports
// the feasibility note that fast C++ qudit simulators cover the paper's
// whole evaluation envelope on a laptop.
#include <benchmark/benchmark.h>

#include "core/quditsim.h"

namespace {

using namespace qs;

void BM_StateVectorSingleQuditGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(1);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const Matrix u = random_unitary(d, rng);
  int site = 0;
  for (auto _ : state) {
    psi.apply(u, {site});
    site = (site + 1) % n;
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorSingleQuditGate)
    ->Args({3, 9})
    ->Args({4, 8})
    ->Args({10, 4});

void BM_StateVectorTwoQuditGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(2);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const Matrix u = random_unitary(d * d, rng);
  int site = 0;
  for (auto _ : state) {
    psi.apply(u, {site, site + 1});
    site = (site + 1) % (n - 1);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorTwoQuditGate)
    ->Args({3, 9})
    ->Args({4, 8})
    ->Args({10, 4});

void BM_DiagonalPhaseGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  std::vector<cplx> diag(static_cast<std::size_t>(d) *
                         static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < diag.size(); ++i)
    diag[i] = std::exp(cplx{0.0, 0.01 * static_cast<double>(i)});
  for (auto _ : state) {
    psi.apply_diagonal(diag, {0, 1});
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagonalPhaseGate)->Args({3, 9})->Args({10, 4});

void BM_DensityMatrixChannel(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  DensityMatrix rho(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const auto kraus = amplitude_damping_channel(d, 0.01);
  for (auto _ : state) {
    rho.apply_channel(kraus, {0});
    benchmark::DoNotOptimize(rho.matrix().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DensityMatrixChannel)->Args({3, 3})->Args({4, 3})->Args({9, 2});

void BM_TrajectoryChannelSample(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(3);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  psi.apply(fourier(d), {0});
  const auto kraus = amplitude_damping_channel(d, 0.01);
  for (auto _ : state) {
    psi.apply_channel_sampled(kraus, {0}, rng);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrajectoryChannelSample)->Args({3, 9})->Args({10, 4});

void BM_LindbladStep(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = d;
  cfg.rk4_steps_per_tau = 1;
  OscillatorReservoir res(cfg);
  for (auto _ : state) {
    res.step(0.3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LindbladStep)->Arg(4)->Arg(6)->Arg(9);

void BM_HermitianEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix h(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    h(r, r) = rng.normal();
    for (std::size_t c = r + 1; c < n; ++c) {
      h(r, c) = rng.complex_normal();
      h(c, r) = std::conj(h(r, c));
    }
  }
  for (auto _ : state) {
    const EigResult er = eigh(h);
    benchmark::DoNotOptimize(er.values.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HermitianEig)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
