// E11 -- Simulator microbenchmarks (google-benchmark): gate application,
// channel application, compiled-plan execution, and Lindblad stepping
// across dimensions. Supports the feasibility note that fast C++ qudit
// simulators cover the paper's whole evaluation envelope on a laptop.
//
// The CI perf-smoke job runs this binary with --benchmark_format=json and
// archives BENCH_simulator_perf.json; items_per_second is the
// machine-readable ops/sec figure per kernel class.
#include <benchmark/benchmark.h>

#include "core/quditsim.h"

namespace {

using namespace qs;

/// The paper-shaped noisy workload: a layered 6-qutrit circuit (local
/// unitaries, CSUM entanglers, phase layers) under per-gate
/// depolarizing/dephasing/loss noise.
Circuit layered_qutrit_circuit(int layers) {
  Circuit c(QuditSpace::uniform(6, 3));
  Rng rng(11);
  for (int layer = 0; layer < layers; ++layer) {
    for (int s = 0; s < 6; ++s) c.add("U", random_unitary(3, rng), {s});
    for (int s = 0; s + 1 < 6; s += 2) c.add("CSUM", csum(3, 3), {s, s + 1});
    std::vector<cplx> diag(9);
    for (int i = 0; i < 9; ++i)
      diag[static_cast<std::size_t>(i)] =
          std::exp(cplx{0.0, 0.07 * static_cast<double>(i)});
    for (int s = 1; s + 1 < 6; s += 2)
      c.add_diagonal("P", diag, {s, s + 1});
  }
  return c;
}

NoiseModel workload_noise() {
  NoiseParams p;
  p.depol_1q = 0.002;
  p.depol_2q = 0.01;
  p.dephase_1q = 0.001;
  p.loss_per_gate = 0.002;
  return NoiseModel(p);
}

void BM_StateVectorSingleQuditGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(1);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const Matrix u = random_unitary(d, rng);
  int site = 0;
  for (auto _ : state) {
    psi.apply(u, {site});
    site = (site + 1) % n;
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorSingleQuditGate)
    ->Args({3, 9})
    ->Args({4, 8})
    ->Args({10, 4});

void BM_StateVectorTwoQuditGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(2);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const Matrix u = random_unitary(d * d, rng);
  int site = 0;
  for (auto _ : state) {
    psi.apply(u, {site, site + 1});
    site = (site + 1) % (n - 1);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorTwoQuditGate)
    ->Args({3, 9})
    ->Args({4, 8})
    ->Args({10, 4});

void BM_DiagonalPhaseGate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  std::vector<cplx> diag(static_cast<std::size_t>(d) *
                         static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < diag.size(); ++i)
    diag[i] = std::exp(cplx{0.0, 0.01 * static_cast<double>(i)});
  for (auto _ : state) {
    psi.apply_diagonal(diag, {0, 1});
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagonalPhaseGate)->Args({3, 9})->Args({10, 4});

void BM_DensityMatrixChannel(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  DensityMatrix rho(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  const auto kraus = amplitude_damping_channel(d, 0.01);
  for (auto _ : state) {
    rho.apply_channel(kraus, {0});
    benchmark::DoNotOptimize(rho.matrix().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DensityMatrixChannel)->Args({3, 3})->Args({4, 3})->Args({9, 2});

void BM_TrajectoryChannelSample(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(3);
  StateVector psi(QuditSpace::uniform(static_cast<std::size_t>(n), d));
  psi.apply(fourier(d), {0});
  const auto kraus = amplitude_damping_channel(d, 0.01);
  for (auto _ : state) {
    psi.apply_channel_sampled(kraus, {0}, rng);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrajectoryChannelSample)->Args({3, 9})->Args({10, 4});

// --- compiled execution plans (exec/plan.h) ------------------------------

/// The acceptance workload: noisy trajectories through the full backend
/// (compile once per request, shared plan, per-block scratch arenas).
/// items_per_second = trajectories/sec.
void BM_NoisyTrajectoryWorkload(benchmark::State& state) {
  const Circuit circuit = layered_qutrit_circuit(4);
  const TrajectoryBackend backend{workload_noise()};
  const std::size_t shots = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    ExecutionRequest request(circuit);
    request.shots = shots;
    request.seed = seed++;
    const ExecutionResult r = backend.execute(request);
    benchmark::DoNotOptimize(r.counts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_NoisyTrajectoryWorkload)->Arg(50)->Unit(benchmark::kMillisecond);

/// Gate-by-gate comparator for the same workload: the seed path that
/// re-resolves channels and rebuilds block plans per operation per
/// trajectory. The ratio to BM_NoisyTrajectoryWorkload is the compiled-
/// plan speedup.
void BM_NoisyTrajectoryGateByGate(benchmark::State& state) {
  const Circuit circuit = layered_qutrit_circuit(4);
  const NoiseModel noise = workload_noise();
  const std::size_t shots = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    for (std::size_t t = 0; t < shots; ++t) {
      Rng rng(split_seed(seed, t));
      StateVector psi(circuit.space());
      TrajectoryBackend::apply(circuit, psi, noise, rng);
      benchmark::DoNotOptimize(psi.amplitudes().data());
    }
    ++seed;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_NoisyTrajectoryGateByGate)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

/// Noiseless compiled run (plan reused across iterations) vs the
/// per-gate legacy loop below: isolates plan reuse + kernel dispatch.
void BM_CompiledPureRun(benchmark::State& state) {
  const Circuit circuit = layered_qutrit_circuit(4);
  const CompiledCircuit plan(circuit);
  kernels::Scratch scratch;
  StateVector psi(circuit.space());
  for (auto _ : state) {
    psi.reset();
    plan.run_pure(psi, scratch);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(circuit.size()));
}
BENCHMARK(BM_CompiledPureRun);

void BM_GateByGatePureRun(benchmark::State& state) {
  const Circuit circuit = layered_qutrit_circuit(4);
  StateVector psi(circuit.space());
  for (auto _ : state) {
    psi.reset();
    StateVectorBackend::apply(circuit, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(circuit.size()));
}
BENCHMARK(BM_GateByGatePureRun);

/// One-time lowering cost (plan construction incl. channel resolution):
/// what the session's plan cache amortizes away.
void BM_PlanCompile(benchmark::State& state) {
  const Circuit circuit = layered_qutrit_circuit(4);
  const NoiseModel noise = workload_noise();
  for (auto _ : state) {
    const CompiledCircuit plan(circuit, noise);
    benchmark::DoNotOptimize(plan.steps().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanCompile);

void BM_LindbladStep(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = d;
  cfg.rk4_steps_per_tau = 1;
  OscillatorReservoir res(cfg);
  for (auto _ : state) {
    res.step(0.3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LindbladStep)->Arg(4)->Arg(6)->Arg(9);

void BM_HermitianEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix h(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    h(r, r) = rng.normal();
    for (std::size_t c = r + 1; c < n; ++c) {
      h(r, c) = rng.complex_normal();
      h(c, r) = std::conj(h(r, c));
    }
  }
  for (auto _ : state) {
    const EigResult er = eigh(h);
    benchmark::DoNotOptimize(er.values.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HermitianEig)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
