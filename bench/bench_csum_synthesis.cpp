// E4 -- CSUM synthesis (the anticipated challenge of paper SS II-A/B) and
// the [20] claim context: single-qudit control of up to eight levels and
// two-qudit operations with "gate fidelities exceeding 99% in noiseless
// setting".
//
// Reported per dimension: synthesized Fourier fidelity, end-to-end CSUM
// unitary fidelity (co-located and adjacent variants), native op counts,
// durations, and decoherence-limited hardware fidelity on the forecast
// device.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_csum_synthesis] E4: CSUM compilation\n\n");

  const GateDurations durations;
  const Processor proc = Processor::forecast_device();

  ConsoleTable table({"d", "variant", "F(fourier)", "F(CSUM)", "native ops",
                      "duration (us)", "hw fidelity"});
  for (int d : {2, 3, 4, 5}) {
    SnapSynthOptions opt;
    opt.layers = 2 * d;  // ansatz depth scales with dimension
    opt.max_layers = 2 * d + 4;
    opt.iters = 600;
    opt.restarts = 3;
    opt.target_fidelity = 0.995;
    const CsumPlan local = plan_csum(d, false, opt, durations);
    table.add_row({fmt_int(d), "co-located", fmt(local.fourier_fidelity, 4),
                   fmt(local.unitary_fidelity, 4),
                   fmt_int(local.native_ops), fmt(local.duration * 1e6, 2),
                   fmt(estimate_hardware_fidelity(local.circuit, proc,
                                                  {0, 1}),
                       3)});
    const CsumPlan bridged = plan_csum(d, true, opt, durations);
    table.add_row({fmt_int(d), "adjacent", fmt(bridged.fourier_fidelity, 4),
                   fmt(bridged.unitary_fidelity, 4),
                   fmt_int(bridged.native_ops),
                   fmt(bridged.duration * 1e6, 2),
                   fmt(estimate_hardware_fidelity(bridged.circuit, proc,
                                                  {3, 4, 2}),
                       3)});
  }
  table.print(std::cout);
  std::printf("\npaper context: [20] reports >99%% noiseless synthesis "
              "fidelities for <=8-level single-qudit and two-qutrit ops;\n"
              "the co-located CSUM rows reproduce that regime, and the "
              "adjacent rows quantify the inter-cavity overhead.\n");
  return 0;
}
