// Calibration-subsystem microbenchmarks (google-benchmark): snapshot
// construction, seeded drift replay, mitigation throughput (dense
// inversion vs the factorized per-site product path), and the
// recalibration-driven transpile-cache churn.
//
// The CI perf-smoke job runs this binary with --benchmark_format=json and
// archives BENCH_calibration.json, so snapshot/drift/mitigation costs --
// the per-recalibration overhead a serving deployment pays -- are tracked
// across commits alongside the simulator and serve benchmarks.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/quditsim.h"

namespace {

using namespace qs;

/// Snapshot build for the paper's 40-mode forecast device.
void BM_SnapshotNominalForecastDevice(benchmark::State& state) {
  const Processor device = Processor::forecast_device();
  for (auto _ : state) {
    CalibrationSnapshot snap = CalibrationSnapshot::nominal(device, 0.02);
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotNominalForecastDevice)->Unit(benchmark::kMicrosecond);

/// One seeded drift step of the forecast device's snapshot (validate()
/// runs inside, as in production).
void BM_DriftAdvanceForecastDevice(benchmark::State& state) {
  const Processor device = Processor::forecast_device();
  const CalibrationSnapshot base =
      CalibrationSnapshot::nominal(device, 0.02);
  const DriftModel drift(17);
  CalibrationSnapshot current = base;
  for (auto _ : state) {
    current = drift.advance(current, 1800.0);
    benchmark::DoNotOptimize(current);
    if (current.epoch > 4096) current = base;  // bound the replayed history
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DriftAdvanceForecastDevice)->Unit(benchmark::kMicrosecond);

/// Dense-matrix mitigation on an n-site d=4 register: builds the full
/// d^n x d^n tensor confusion once, inverts per histogram.
void BM_MitigateDense(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const auto site = adjacent_confusion_matrix(4, 0.08);
  const auto dense = register_confusion_matrix(site, sites);
  std::vector<double> observed(dense.size());
  for (std::size_t i = 0; i < observed.size(); ++i)
    observed[i] = static_cast<double>((13 * i + 5) % 97) + 1.0;
  for (auto _ : state) {
    auto out = mitigate_readout(dense, observed);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MitigateDense)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

/// Factorized per-site mitigation on the same registers (plus one the
/// dense path cannot touch without a 16M-entry matrix): the serve-layer
/// production path.
void BM_MitigateFactorized(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const auto site = adjacent_confusion_matrix(4, 0.08);
  std::vector<std::vector<std::vector<double>>> site_matrices(
      static_cast<std::size_t>(sites), site);
  std::vector<int> dims(static_cast<std::size_t>(sites), 4);
  std::size_t dim = 1;
  for (int s = 0; s < sites; ++s) dim *= 4;
  std::vector<double> observed(dim);
  for (std::size_t i = 0; i < dim; ++i)
    observed[i] = static_cast<double>((13 * i + 5) % 97) + 1.0;
  for (auto _ : state) {
    auto out = mitigate_readout_product(site_matrices, dims, observed);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MitigateFactorized)
    ->Arg(2)
    ->Arg(3)
    ->Arg(6)
    ->Unit(benchmark::kMicrosecond);

/// The cost a recalibration imposes on the compile layer: every epoch is
/// a fresh transpile-cache key, so the workload re-transpiles once per
/// epoch (measures transpile-under-calibration, the serve layer's
/// post-recalibration hiccup).
void BM_RecalibrationTranspileChurn(benchmark::State& state) {
  const Processor device = Processor::testbed_device();
  Circuit logical(QuditSpace({8, 8}));
  logical.add("F", fourier(8), {0});
  logical.add("CSUM", csum(8, 8), {0, 1});
  logical.add("F2", fourier(8), {1});
  const DriftModel drift(23);
  CalibrationSnapshot snap = CalibrationSnapshot::nominal(device, 0.02);
  TranspileCache cache(64);
  for (auto _ : state) {
    state.PauseTiming();
    snap = drift.advance(snap, 1800.0);  // new epoch = new cache key
    const Processor view = device.with_calibration(
        std::make_shared<const CalibrationSnapshot>(snap));
    state.ResumeTiming();
    auto artifact = cache.get_or_transpile(logical, view);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecalibrationTranspileChurn)->Unit(benchmark::kMillisecond);

}  // namespace
