// E5 -- NDAR-QAOA graph coloring (paper SS II-B, Table I row 2, citing
// [21]): noise-directed adaptive remapping "dramatically increasing the
// probability of optimal solutions" by exploiting photon loss.
//
// Instance: N = 9 nodes, 3 colors (Table I). One qudit per node; phase
// separators are two-qudit cross-Kerr-class diagonal gates. Noisy
// execution uses per-gate photon loss; NDAR is compared round-by-round
// against vanilla noisy QAOA.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_qaoa_coloring] E5: NDAR vs vanilla QAOA, N=9, "
              "3 colors\n\n");
  Rng rng(9);
  const Graph g = random_regular_graph(9, 4, rng);
  const int optimum = optimal_colored_edges(g, 3);
  std::printf("instance: %d nodes, %zu edges, optimum %d\n", g.n,
              g.num_edges(), optimum);

  const ColoringQaoa qaoa(g, 3);
  const auto [gamma, beta] = qaoa.optimize_p1(8);
  std::printf("p=1 params: gamma %.3f, beta %.3f; noiseless <C> = %.3f\n\n",
              gamma, beta, qaoa.expected_cost({gamma}, {beta}));

  NoiseParams p;
  p.loss_per_gate = 0.12;
  p.dephase_2q = 0.02;
  const NoiseModel noise(p);

  NdarOptions base;
  base.rounds = 5;
  base.shots = 48;
  NdarOptions vanilla = base;
  vanilla.remap = false;

  // Average over seeds for stable curves.
  const int seeds = 2;
  std::vector<double> nd_mean(static_cast<std::size_t>(base.rounds), 0.0);
  std::vector<double> va_mean(static_cast<std::size_t>(base.rounds), 0.0);
  std::vector<double> nd_popt(static_cast<std::size_t>(base.rounds), 0.0);
  std::vector<double> va_popt(static_cast<std::size_t>(base.rounds), 0.0);
  int nd_best = 0, va_best = 0;
  for (int s = 0; s < seeds; ++s) {
    Rng r1(100 + s), r2(100 + s);
    const NdarResult nd = run_ndar(qaoa, gamma, beta, noise, base, r1);
    const NdarResult va = run_ndar(qaoa, gamma, beta, noise, vanilla, r2);
    for (int r = 0; r < base.rounds; ++r) {
      nd_mean[static_cast<std::size_t>(r)] +=
          nd.mean_cost_per_round[static_cast<std::size_t>(r)] / seeds;
      va_mean[static_cast<std::size_t>(r)] +=
          va.mean_cost_per_round[static_cast<std::size_t>(r)] / seeds;
      nd_popt[static_cast<std::size_t>(r)] +=
          nd.p_best_per_round[static_cast<std::size_t>(r)] / seeds;
      va_popt[static_cast<std::size_t>(r)] +=
          va.p_best_per_round[static_cast<std::size_t>(r)] / seeds;
    }
    nd_best = std::max(nd_best, nd.best_cost);
    va_best = std::max(va_best, va.best_cost);
  }

  ConsoleTable table({"round", "vanilla <C>", "NDAR <C>", "vanilla P(best)",
                      "NDAR P(best)"});
  for (int r = 0; r < base.rounds; ++r)
    table.add_row({fmt_int(r), fmt(va_mean[static_cast<std::size_t>(r)], 2),
                   fmt(nd_mean[static_cast<std::size_t>(r)], 2),
                   fmt(va_popt[static_cast<std::size_t>(r)], 3),
                   fmt(nd_popt[static_cast<std::size_t>(r)], 3)});
  table.print(std::cout);
  std::printf("\nbest found: NDAR %d / %d, vanilla %d / %d\n", nd_best,
              optimum, va_best, optimum);
  std::printf("paper claim shape: NDAR's sample quality climbs across "
              "rounds while vanilla decays toward the loss attractor.\n");
  return 0;
}
