// Ablation studies for the design choices called out in DESIGN.md:
//   (a) QAOA mixer family (full-mixing vs cyclic shift),
//   (b) Trotter order (first vs second) at equal gate budget,
//   (c) SNAP+displacement ansatz depth vs synthesis fidelity,
//   (d) readout-error mitigation on qudit measurement histograms.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_ablations] design-choice ablations\n\n");

  // --- (a) Mixer family --------------------------------------------------
  {
    Rng rng(71);
    const Graph g = random_regular_graph(8, 3, rng);
    const ColoringQaoa qaoa(g, 3);
    ConsoleTable t({"mixer", "best <C> over p=1 grid"});
    for (const auto& [name, kind] :
         std::vector<std::pair<std::string, MixerKind>>{
             {"full (complete-graph)", MixerKind::kFull},
             {"cyclic shift (X+Xdag)", MixerKind::kShift}}) {
      const auto [gamma, beta] = qaoa.optimize_p1(8, kind);
      t.add_row({name, fmt(qaoa.expected_cost({gamma}, {beta}, kind), 3)});
    }
    std::printf("(a) QAOA mixer family, 8-node 3-coloring (|E| = %zu):\n",
                g.num_edges());
    t.print(std::cout);
  }

  // --- (b) Trotter order at equal gate budget ----------------------------
  {
    const Hamiltonian h = gauge_chain(3, {3, 1.0, 1.0});
    const double t_total = 1.0;
    const Matrix exact = exact_evolution(h, t_total);
    ConsoleTable t({"scheme", "gates", "process infidelity"});
    // First order with 2n steps has the same gate count as second order
    // with n steps (Strang doubles the sweep).
    for (int n : {4, 8}) {
      const Circuit c1 =
          native_trotter_circuit(h, {1, t_total / (2 * n), 2 * n});
      const Circuit c2 = native_trotter_circuit(h, {2, t_total / n, n});
      t.add_row({"order 1, " + std::to_string(2 * n) + " steps",
                 fmt_int(static_cast<long long>(c1.size())),
                 fmt_sci(1.0 - unitary_fidelity(circuit_unitary(c1), exact))});
      t.add_row({"order 2, " + std::to_string(n) + " steps",
                 fmt_int(static_cast<long long>(c2.size())),
                 fmt_sci(1.0 - unitary_fidelity(circuit_unitary(c2), exact))});
    }
    std::printf("\n(b) Trotter order at equal gate budget (3-site chain):\n");
    t.print(std::cout);
  }

  // --- (c) SNAP ansatz depth ---------------------------------------------
  {
    ConsoleTable t({"layers", "Fourier-3 fidelity", "native ops"});
    for (int layers : {1, 2, 4, 6, 8}) {
      SnapSynthOptions opt;
      opt.layers = layers;
      opt.max_layers = layers;  // fixed depth: no adaptive growth
      opt.iters = 400;
      opt.restarts = 2;
      opt.target_fidelity = 0.9999;
      const SnapSynthResult r =
          synthesize_fourier(3, opt, GateDurations{});
      t.add_row({fmt_int(layers), fmt(r.fidelity_truncated, 4),
                 fmt_int(static_cast<long long>(r.circuit.size()))});
    }
    std::printf("\n(c) SNAP+displacement depth vs synthesis fidelity:\n");
    t.print(std::cout);
  }

  // --- (d) Readout mitigation --------------------------------------------
  {
    const Circuit ghz = ghz_circuit(2, 3);
    const auto site_conf = adjacent_confusion_matrix(3, 0.15);
    const auto reg_conf = register_confusion_matrix(site_conf, 2);
    // True sampling (state-vector backend), then classical corruption,
    // then mitigation.
    const auto counts = StateVectorBackend().sample_counts(ghz, 20000, 72);
    std::vector<double> observed(counts.size());
    {
      std::vector<double> raw(counts.begin(), counts.end());
      observed = apply_confusion(reg_conf, raw);
    }
    const auto mitigated = mitigate_readout(reg_conf, observed);
    // GHZ support indices: |kk>.
    double raw_ghz = 0.0, mit_ghz = 0.0, total = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) total += observed[i];
    for (int k = 0; k < 3; ++k) {
      const std::size_t idx = ghz.space().index_of({k, k});
      raw_ghz += observed[idx] / total;
      mit_ghz += mitigated[idx] / total;
    }
    std::printf("\n(d) readout mitigation on qutrit GHZ sampling "
                "(eps = 0.15 per site):\n");
    ConsoleTable t({"histogram", "GHZ-support weight (ideal 1.0)"});
    t.add_row({"corrupted", fmt(raw_ghz, 4)});
    t.add_row({"mitigated", fmt(mit_ghz, 4)});
    t.print(std::cout);
  }
  return 0;
}
