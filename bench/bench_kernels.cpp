// Kernel-layer microbenchmarks (google-benchmark): one benchmark per
// kernel class (dense single-site strided, dense multi-site table,
// diagonal, monomial), each as a SIMD-vs-scalar pair so the dispatch
// tiers' speedups are measured at the layer they live in, plus the
// batched-vs-per-shot trajectory pair that motivates the SoA StateBatch.
//
// The CI perf-smoke job runs this binary with --benchmark_format=json
// and archives BENCH_kernels.json; the perf-gate diffs items_per_second
// across commits, so a kernel-tier regression is attributable here
// before it smears across bench_simulator_perf workloads.
#include <benchmark/benchmark.h>

#include "core/quditsim.h"

namespace {

using namespace qs;

std::vector<cplx> random_amplitudes(std::size_t n, Rng& rng) {
  std::vector<cplx> amps(n);
  for (std::size_t i = 0; i < n; ++i)
    amps[i] = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return amps;
}

/// Shared fixture state: a mixed-radix space with a hot middle site
/// (odd stride) and a two-site pair whose bases run contiguously.
struct KernelSetup {
  QuditSpace space;
  detail::BlockPlan plan;
  Matrix op;
  std::vector<cplx> diag;
  kernels::OpKernel monomial;
  std::vector<cplx> amps;

  KernelSetup(std::vector<int> dims, std::vector<int> sites)
      : space(std::move(dims)),
        plan(detail::make_block_plan(space, sites)) {
    Rng rng(5);
    op = random_unitary(static_cast<int>(plan.block), rng);
    diag.resize(plan.block);
    for (std::size_t i = 0; i < plan.block; ++i)
      diag[i] = std::exp(cplx{0.0, 0.1 * static_cast<double>(i)});
    Matrix m = Matrix::zero(plan.block, plan.block);
    for (std::size_t r = 0; r < plan.block; ++r)
      m(r, (r + 1) % plan.block) = diag[r];
    monomial = kernels::OpKernel::analyze(m);
    amps = random_amplitudes(space.dimension(), rng);
  }
};

/// dims/sites per benchmark argument: 0 = single-site d=3 (specialized,
/// odd stride 27), 1 = single-site d=5 (specialized), 2 = two-site 3x3
/// block 9 (specialized, table path), 3 = two-site 4x5 block 20
/// (generic tier).
KernelSetup make_setup(std::int64_t shape) {
  switch (shape) {
    case 0:
      return KernelSetup({3, 3, 3, 3, 3, 3, 3, 3}, {3});
    case 1:
      return KernelSetup({5, 5, 5, 5, 5}, {2});
    case 2:
      return KernelSetup({3, 3, 3, 3, 3, 3, 3, 3}, {3, 4});
    default:
      return KernelSetup({4, 5, 4, 5, 4}, {1, 2});
  }
}

void BM_DenseSimd(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  kernels::Scratch scratch;
  for (auto _ : state) {
    kernels::apply_dense(s.op.data(), s.plan, s.amps.data(), scratch);
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseSimd)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_DenseScalar(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  kernels::Scratch scratch;
  for (auto _ : state) {
    kernels::scalar::apply_dense(s.op.data(), s.plan, s.amps.data(),
                                 scratch);
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseScalar)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_DiagonalSimd(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  kernels::Scratch scratch;
  for (auto _ : state) {
    kernels::apply_diagonal(s.diag.data(), s.plan, s.amps.data(), scratch);
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagonalSimd)->Arg(0)->Arg(2);

void BM_DiagonalScalar(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  for (auto _ : state) {
    kernels::scalar::apply_diagonal(s.diag.data(), s.plan, s.amps.data());
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiagonalScalar)->Arg(0)->Arg(2);

void BM_MonomialSimd(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  kernels::Scratch scratch;
  for (auto _ : state) {
    kernels::apply(s.monomial, s.plan, s.amps.data(), scratch);
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonomialSimd)->Arg(0)->Arg(2);

void BM_MonomialScalar(benchmark::State& state) {
  KernelSetup s = make_setup(state.range(0));
  kernels::Scratch scratch;
  for (auto _ : state) {
    kernels::scalar::apply(s.monomial, s.plan, s.amps.data(), scratch);
    benchmark::DoNotOptimize(s.amps.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonomialScalar)->Arg(0)->Arg(2);

// --- batched-vs-per-shot trajectories ---------------------------------

Circuit layered_circuit(int layers) {
  Circuit c(QuditSpace::uniform(6, 3));
  Rng rng(11);
  for (int layer = 0; layer < layers; ++layer) {
    for (int s = 0; s < 6; ++s) c.add("U", random_unitary(3, rng), {s});
    for (int s = 0; s + 1 < 6; s += 2)
      c.add("CSUM", csum(3, 3), {s, s + 1});
  }
  return c;
}

NoiseModel bench_noise() {
  NoiseParams p;
  p.depol_1q = 0.002;
  p.depol_2q = 0.01;
  p.dephase_1q = 0.001;
  p.loss_per_gate = 0.002;
  return NoiseModel(p);
}

/// One batch of StateBatch::kLanes trajectories through the batched
/// kernels (items == trajectories, so the pair below compares per-shot
/// throughput directly).
void BM_TrajectoryBatched(benchmark::State& state) {
  const Circuit c = layered_circuit(static_cast<int>(state.range(0)));
  const CompiledCircuit plan(c, bench_noise(), PlanOptions{});
  constexpr std::size_t kW = kernels::StateBatch::kLanes;
  kernels::StateBatch batch;
  batch.configure(c.space().dimension());
  kernels::Scratch scratch;
  scratch.reserve_block(plan.max_block());
  Rng rngs[kW];
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < kW; ++k)
      rngs[k] = Rng(split_seed(17, t + k));
    batch.reset(0);
    plan.run_trajectory_batch(batch, rngs, kW, scratch);
    benchmark::DoNotOptimize(batch.re());
    t += kW;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kW));
}
BENCHMARK(BM_TrajectoryBatched)->Arg(4)->Arg(8);

/// The same kLanes trajectories run one state at a time through the
/// scalar compiled path (the pre-batching execution model).
void BM_TrajectoryPerShot(benchmark::State& state) {
  const Circuit c = layered_circuit(static_cast<int>(state.range(0)));
  const CompiledCircuit plan(c, bench_noise(), PlanOptions{});
  constexpr std::size_t kW = kernels::StateBatch::kLanes;
  StateVector psi(c.space());
  kernels::Scratch scratch;
  scratch.reserve_block(plan.max_block());
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < kW; ++k) {
      Rng rng(split_seed(17, t + k));
      psi.reset();
      plan.run_trajectory(psi, rng, scratch);
      benchmark::DoNotOptimize(psi.amplitudes().data());
    }
    t += kW;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kW));
}
BENCHMARK(BM_TrajectoryPerShot)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
