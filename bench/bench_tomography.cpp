// E9 -- Reservoir-processing tomography (paper SS II-C, citing [28]):
// "this strategy required smaller training datasets and simpler resources
// than competing methods" and "the learned reservoir black-box
// automatically compensates for decoherence [and] control imperfections."
//
// Reported: reconstruction fidelity vs training-set size for the trained
// map and the direct linear-inversion baseline, with photon loss between
// preparation and measurement and finite readout shots.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_tomography] E9: trained vs direct reconstruction\n\n");

  TomoConfig cfg;
  cfg.levels = 6;
  cfg.num_probes = 14;
  cfg.loss_gamma = 0.25;  // decoherence between preparation and readout
  cfg.shots = 1024;
  std::printf("cavity d=%d, %d displacement probes (x%d outcomes), "
              "loss gamma=%.2f, %zu shots/probe\n\n", cfg.levels,
              cfg.num_probes, cfg.levels, cfg.loss_gamma, cfg.shots);

  Rng rng(19);
  // Test set: the cavity state zoo of the paper's experiments.
  std::vector<std::pair<std::string, Matrix>> test_states;
  auto pure = [](const std::vector<cplx>& psi) {
    Matrix rho(psi.size(), psi.size());
    for (std::size_t i = 0; i < psi.size(); ++i)
      for (std::size_t j = 0; j < psi.size(); ++j)
        rho(i, j) = psi[i] * std::conj(psi[j]);
    return rho;
  };
  test_states.emplace_back("coherent(1.4)",
                           pure(coherent_state(6, cplx{1.4, 0.0})));
  test_states.emplace_back("fock|2>", pure(fock_state(6, 2)));
  test_states.emplace_back("even cat(1.2)",
                           pure(cat_state(6, cplx{1.2, 0.0}, 1)));
  test_states.emplace_back("thermal(0.8)", thermal_state(6, 0.8));
  test_states.emplace_back("random rank-2", random_density(6, 2, rng));

  ConsoleTable table({"train size", "trained mean F", "inversion mean F"});
  for (int train_size : {30, 100, 300, 800}) {
    ReservoirTomography tomo(cfg);
    std::vector<Matrix> zoo;
    for (int i = 0; i < train_size; ++i)
      zoo.push_back(random_density(6, 1 + static_cast<int>(rng.index(3)),
                                   rng));
    tomo.train(zoo, 1e-3, rng);
    double trained_f = 0.0, inverted_f = 0.0;
    for (const auto& [name, rho] : test_states) {
      const auto features = tomo.measure(rho, rng);
      trained_f += density_fidelity(tomo.reconstruct(features), rho);
      inverted_f += density_fidelity(tomo.invert_directly(features, 1e-4),
                                     rho);
    }
    table.add_row({fmt_int(train_size),
                   fmt(trained_f / test_states.size(), 4),
                   fmt(inverted_f / test_states.size(), 4)});
  }
  table.print(std::cout);

  // Per-state breakdown at the largest training size.
  std::printf("\nper-state fidelity (800 training states):\n");
  ReservoirTomography tomo(cfg);
  std::vector<Matrix> zoo;
  for (int i = 0; i < 800; ++i)
    zoo.push_back(random_density(6, 1 + static_cast<int>(rng.index(3)), rng));
  tomo.train(zoo, 1e-3, rng);
  ConsoleTable detail({"state", "trained F", "inversion F"});
  for (const auto& [name, rho] : test_states) {
    const auto features = tomo.measure(rho, rng);
    detail.add_row({name,
                    fmt(density_fidelity(tomo.reconstruct(features), rho), 4),
                    fmt(density_fidelity(tomo.invert_directly(features, 1e-4),
                                         rho),
                        4)});
  }
  detail.print(std::cout);
  std::printf("\npaper claim shape: the trained map compensates the loss "
              "channel that biases direct inversion.\n");
  return 0;
}
