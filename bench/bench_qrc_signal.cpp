// E7b -- Analog microwave-signal classification with measurement
// backaction (paper SS II-C, citing [27]): waveforms are fed into the
// cavity while the dispersively coupled transmon is periodically driven
// and measured; the measurement record feeds a trained linear classifier.
//
// Reported: classification accuracy vs ensemble size (measurement
// repetitions) and vs the number of probe cycles per step -- the two
// dials of the measurement-overhead challenge.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_qrc_signal] E7b: two-tone classification via "
              "transmon probing\n\n");
  Rng rng(31);
  const SignalTask task = make_two_tone_task(28, 8, 0.35, 1.25, rng);
  const int train = static_cast<int>(task.input.size()) - 72;
  std::printf("task: %zu steps of two sinusoidal classes "
              "(freqs 0.35 / 1.25)\n\n", task.input.size());

  // Weak-measurement regime (one probe per step, moderate chi): frequent
  // strong probing would freeze the cavity's phase response (quantum
  // Zeno backaction) and erase the class signal. The classifier sees a
  // 12-step window of the record; accuracy is averaged over independent
  // measurement-noise realizations.
  constexpr int kWindow = 12;
  constexpr int kRepeats = 2;
  ConsoleTable table({"ensemble (shots)", "window features", "accuracy"});
  for (int ensemble : {32, 128, 512}) {
    TransmonProbeConfig cfg;
    cfg.cavity_levels = 6;
    cfg.probes_per_step = 1;
    cfg.probe_time = 1.8;
    cfg.chi = 0.6;
    cfg.omega_c = 0.6;
    cfg.input_gain = 0.7;
    cfg.ensemble = ensemble;
    const TransmonProbeReservoir res(cfg);
    double acc = 0.0;
    std::size_t cols = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      Rng run_rng(100 + ensemble + rep);
      const RMatrix features =
          stack_history(res.run(task.input, run_rng), kWindow);
      cols = features.cols();
      acc += evaluate_sign_accuracy(features, task.target, 12, train, 1e-4) /
             kRepeats;
    }
    table.add_row({fmt_int(ensemble),
                   fmt_int(static_cast<long long>(cols)), fmt(acc, 3)});
  }
  table.print(std::cout);
  std::printf("\npaper claim shape ([27]): signal classes are separable "
              "from the transmon record; accuracy needs a sufficient "
              "measurement budget (the shot-noise challenge).\n");
  return 0;
}
