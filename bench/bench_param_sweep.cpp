// Parametric-compilation sweep microbenchmarks (google-benchmark): the
// bind fast path (transpile/lower once, bind per point) against the
// rebuild path (materialize a fresh circuit per point) on a QAOA angle
// sweep, logical and hardware-targeted.
//
// The CI perf-smoke job runs this binary with --benchmark_format=json and
// archives BENCH_param_sweep.json; items_per_second is sweep points/sec.
// Counters pin the artifact-reuse contract alongside the wall time:
// `lowerings` (plan-cache misses) and `transpiles` (transpile-cache
// misses) must stay 1 on the bind path no matter the point count, while
// the rebuild path pays one lowering (and transpile) per point.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/quditsim.h"

namespace {

using namespace qs;

constexpr double kGammaSpan = 4.0;
constexpr double kBetaSpan = 2.0;

ColoringQaoa sweep_instance() {
  Graph ring;
  ring.n = 4;
  ring.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  return {ring, 3};
}

/// A 4-mode qutrit device: small enough that the routed physical circuit
/// is state-vector simulable (3^4 amplitudes), so the sweep measures the
/// compile path rather than raw simulation volume.
Processor sweep_device() {
  ProcessorConfig config;
  config.num_cavities = 2;
  config.modes_per_cavity = 2;
  config.levels_per_mode = 3;
  return Processor(config);
}

/// The k-th point of an n-point p=1 angle grid (deterministic, spread
/// over both angles so consecutive points never repeat a binding).
std::vector<double> sweep_point(std::size_t k, std::size_t n) {
  const double t = static_cast<double>(k) / static_cast<double>(n);
  return {kGammaSpan * t, kBetaSpan * (1.0 - t)};
}

void report_reuse(benchmark::State& state, const ExecutionSession& session,
                  std::size_t points) {
  state.counters["sweep_points"] = static_cast<double>(points);
  state.counters["lowerings"] =
      static_cast<double>(session.plan_cache().misses());
  state.counters["plan_cache_hits"] =
      static_cast<double>(session.plan_cache().hits());
  state.counters["transpiles"] =
      static_cast<double>(session.transpile_cache().misses());
}

/// One sweep through an ExecutionSession. Bind path: one symbolic
/// circuit, per-point parameter vectors. Rebuild path: one concrete
/// circuit built per point (distinct fingerprints, so every point
/// transpiles and lowers afresh).
void run_sweep(benchmark::State& state, bool bind_path,
               const Processor* device) {
  const std::size_t points = static_cast<std::size_t>(state.range(0));
  const ColoringQaoa qaoa = sweep_instance();
  const std::vector<int> offsets(4, 0);
  const std::vector<double> cost = qaoa.cost_diagonal(offsets);
  const Circuit symbolic = qaoa.parametric_circuit(1, offsets);
  const StateVectorBackend backend;

  SessionOptions options;
  options.threads = 1;  // measure the compile path, not the fan-out
  ExecutionSession session(backend, options);
  for (auto _ : state) {
    std::vector<ExecutionRequest> requests;
    requests.reserve(points);
    for (std::size_t k = 0; k < points; ++k) {
      const std::vector<double> angles = sweep_point(k, points);
      Circuit circuit = bind_path
                            ? symbolic
                            : qaoa.build_circuit({angles[0]}, {angles[1]},
                                                 offsets);
      ExecutionRequest request(std::move(circuit));
      if (bind_path) request.with_parameters(angles);
      request.with_observable("cost", cost).with_seed(17);
      if (device != nullptr) request.with_compilation(*device);
      requests.push_back(std::move(request));
    }
    std::vector<ExecutionResult> results =
        session.submit_batch(std::move(requests));
    benchmark::DoNotOptimize(results.back().expectations["cost"]);
  }
  // Lifetime counters of the session's caches: on the bind path they stay
  // at one lowering (and one transpile) across every iteration of every
  // sweep; the rebuild path pays per point.
  report_reuse(state, session, points);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points));
}

void BM_QaoaSweep_Bind(benchmark::State& state) {
  run_sweep(state, /*bind_path=*/true, nullptr);
}
BENCHMARK(BM_QaoaSweep_Bind)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_QaoaSweep_Rebuild(benchmark::State& state) {
  run_sweep(state, /*bind_path=*/false, nullptr);
}
BENCHMARK(BM_QaoaSweep_Rebuild)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_QaoaSweepHardware_Bind(benchmark::State& state) {
  const Processor device = sweep_device();
  run_sweep(state, /*bind_path=*/true, &device);
}
BENCHMARK(BM_QaoaSweepHardware_Bind)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_QaoaSweepHardware_Rebuild(benchmark::State& state) {
  const Processor device = sweep_device();
  run_sweep(state, /*bind_path=*/false, &device);
}
BENCHMARK(BM_QaoaSweepHardware_Rebuild)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
