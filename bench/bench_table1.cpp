// E1 -- Regenerates Table I ("Summary of proposed application experiments
// for next-gen superconducting cavity QPU") with quantitative columns
// computed by the resource estimator on the forecast device.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  Rng rng(1);
  const Processor proc = Processor::forecast_device(&rng);
  std::printf("[bench_table1] E1: Table I on %s\n\n",
              proc.to_string().c_str());

  const auto rows = table1_estimates(proc, rng);
  ConsoleTable table({"Application", "Implementation estimation",
                      "Main challenge"});
  for (const AppEstimate& row : rows)
    table.add_row({row.application, row.implementation, row.challenge});
  table.print(std::cout);

  std::printf("\nquantitative columns (one unit = Trotter step / QAOA "
              "layer / reservoir run):\n");
  ConsoleTable q({"Application", "modes", "eq. qubits", "logical gates",
                  "routed ops", "swaps", "unit duration (us)",
                  "unit fidelity"});
  for (const AppEstimate& row : rows)
    q.add_row({row.application, fmt_int(row.modes_needed),
               fmt(row.hilbert_qubits, 1),
               fmt_int(static_cast<long long>(row.unit_gates)),
               fmt_int(static_cast<long long>(row.routed_gates)),
               fmt_int(row.swaps), fmt(row.unit_duration * 1e6, 1),
               fmt_sci(row.unit_fidelity)});
  q.print(std::cout);
  return 0;
}
