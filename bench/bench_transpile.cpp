// Transpile-pipeline microbenchmarks (google-benchmark): optimization
// quality of the pass pipeline vs the greedy seed configuration on the
// Table I rotor-2D workload, plus TranspileCache hit throughput.
//
// The CI perf-smoke job runs this binary with --benchmark_format=json and
// archives BENCH_transpile.json. Quality is reported through counters on
// the pipeline benchmarks -- swaps, makespan_us, forecast_fidelity -- so
// the artifact tracks both compile speed (items_per_second) and compile
// quality across commits. The seed-vs-lookahead pair is the headline:
// the lookahead router places swaps against future gate demand and cuts
// the swap network the greedy router builds under identity placement.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/quditsim.h"

namespace {

using namespace qs;

/// The Table I 9x2 rotor-ladder Trotter step (d = 4), the paper's E3
/// routing stress case.
Circuit rotor2d_step() {
  const Hamiltonian h = gauge_ladder_2d(9, 2, {4, 1.0, 1.0});
  return native_trotter_circuit(h, {2, 0.1, 1});
}

Processor bench_device() {
  Rng rng(3);
  return derate_for_levels(Processor::forecast_device(&rng), 4);
}

void report_quality(benchmark::State& state,
                    const TranspiledCircuit& artifact) {
  state.counters["swaps"] = static_cast<double>(artifact.swaps_inserted);
  state.counters["physical_ops"] =
      static_cast<double>(artifact.physical.size());
  state.counters["makespan_us"] = artifact.schedule.makespan * 1e6;
  state.counters["forecast_fidelity"] = artifact.schedule.total_fidelity;
}

/// Full pipeline (commutation + lookahead routing) under identity
/// placement: the routing-dominated regime.
void BM_TranspileRotor2dPipeline(benchmark::State& state) {
  const Circuit step = rotor2d_step();
  const Processor device = bench_device();
  TranspileOptions options;
  options.use_noise_aware_mapping = false;
  std::shared_ptr<const TranspiledCircuit> artifact;
  for (auto _ : state) {
    artifact = transpile(step, device, options);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetItemsProcessed(state.iterations());
  report_quality(state, *artifact);
}
BENCHMARK(BM_TranspileRotor2dPipeline)->Unit(benchmark::kMillisecond);

/// Greedy seed configuration (no commutation, seed router) on the same
/// workload: the baseline the pipeline must beat on swap count.
void BM_TranspileRotor2dSeedRouter(benchmark::State& state) {
  const Circuit step = rotor2d_step();
  const Processor device = bench_device();
  TranspileOptions options;
  options.use_noise_aware_mapping = false;
  options.commute_gates = false;
  options.lookahead_routing = false;
  std::shared_ptr<const TranspiledCircuit> artifact;
  for (auto _ : state) {
    artifact = transpile(step, device, options);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetItemsProcessed(state.iterations());
  report_quality(state, *artifact);
}
BENCHMARK(BM_TranspileRotor2dSeedRouter)->Unit(benchmark::kMillisecond);

/// Noise-aware mapping + full pipeline: the configuration the estimator
/// and the exec layer run by default (anneal included, so this tracks
/// the end-to-end cost a cache miss pays).
void BM_TranspileRotor2dNoiseAware(benchmark::State& state) {
  const Circuit step = rotor2d_step();
  const Processor device = bench_device();
  std::shared_ptr<const TranspiledCircuit> artifact;
  for (auto _ : state) {
    artifact = transpile(step, device);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetItemsProcessed(state.iterations());
  report_quality(state, *artifact);
}
BENCHMARK(BM_TranspileRotor2dNoiseAware)->Unit(benchmark::kMillisecond);

/// Cache hit throughput: the per-request cost a warm TranspileCache adds
/// to the serve layer's dispatch path (fingerprint + LRU bump).
void BM_TranspileCacheHit(benchmark::State& state) {
  const Circuit step = rotor2d_step();
  const Processor device = bench_device();
  TranspileCache cache(8);
  cache.get_or_transpile(step, device);  // warm
  for (auto _ : state) {
    auto artifact = cache.get_or_transpile(step, device);
    benchmark::DoNotOptimize(artifact);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(cache.hits());
}
BENCHMARK(BM_TranspileCacheHit);

}  // namespace
