// E7 -- Quantum reservoir computing (paper SS II-C, Table I row 3, citing
// [25]): two coupled oscillators with ~9 usable levels form an 81-neuron
// reservoir; classical reservoirs need more neurons for the same error.
//
// One physical simulation at 9 levels/mode; the neuron count is swept by
// exposing 2..9 Fock levels per mode as features (4..81 neurons), exactly
// the paper's accounting. An echo-state-network sweep provides the
// classical comparison on the same task and readout.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_qrc_timeseries] E7: neurons from Fock levels\n\n");
  Rng rng(5);
  const int length = 170;
  const int washout = 20, train = 100;
  const SeriesTask narma = make_narma(2, length, rng);

  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = 9;
  cfg.kappa = 0.35;
  cfg.kerr = 1.0;
  cfg.input_gain = 1.5;
  cfg.rk4_steps_per_tau = 8;  // auto-raised by the stability floor
  OscillatorReservoir reservoir(cfg);
  std::printf("physical reservoir: 2 modes x 9 levels (81-dim joint Fock "
              "basis); NARMA-2 task, %d steps\n\n", length);

  // One dynamics pass; slice features per cutoff afterwards.
  const RMatrix full = reservoir.run(narma.input);
  const QuditSpace space = QuditSpace::uniform(2, 9);

  ConsoleTable table({"Fock cutoff", "neurons", "test NMSE"});
  for (int cutoff : {2, 3, 4, 5, 7, 9}) {
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < space.dimension(); ++i)
      if (space.digit(i, 0) < cutoff && space.digit(i, 1) < cutoff)
        keep.push_back(i);
    RMatrix sliced(full.rows(), keep.size());
    for (std::size_t r = 0; r < full.rows(); ++r)
      for (std::size_t c = 0; c < keep.size(); ++c)
        sliced(r, c) = full(r, keep[c]);
    const EvalResult ev =
        evaluate_readout(sliced, narma.target, washout, train, 1e-5);
    table.add_row({fmt_int(cutoff),
                   fmt_int(static_cast<long long>(keep.size())),
                   fmt(ev.test_nmse, 4)});
  }
  table.print(std::cout);

  std::printf("\nclassical echo-state-network comparison (same task and "
              "readout):\n");
  ConsoleTable esn_table({"ESN neurons", "test NMSE"});
  for (int neurons : {4, 9, 16, 25, 49, 81, 162}) {
    EsnConfig ecfg;
    ecfg.neurons = neurons;
    ecfg.input_scale = 0.5;
    Rng erng(42);
    EchoStateNetwork esn(ecfg, erng);
    const EvalResult ev = evaluate_readout(esn.run(narma.input),
                                           narma.target, washout, train,
                                           1e-5);
    esn_table.add_row({fmt_int(neurons), fmt(ev.test_nmse, 4)});
  }
  esn_table.print(std::cout);

  // Sine/square classification, the [25] flagship task.
  std::printf("\nsine/square waveform classification:\n");
  Rng crng(6);
  const SeriesTask wave = make_sine_square(18, 8, crng);
  ReservoirConfig ccfg = cfg;
  ccfg.levels = 6;
  ccfg.input_gain = 0.8;
  ccfg.kappa = 0.3;
  OscillatorReservoir cres(ccfg);
  const double acc = evaluate_sign_accuracy(cres.run(wave.input),
                                            wave.target, 8, 96, 1e-6);
  std::printf("  quantum reservoir (36 neurons) accuracy: %.3f\n", acc);
  for (int neurons : {4, 12, 36}) {
    EsnConfig ecfg;
    ecfg.neurons = neurons;
    Rng erng(43);
    EchoStateNetwork esn(ecfg, erng);
    const double eacc = evaluate_sign_accuracy(esn.run(wave.input),
                                               wave.target, 8, 96, 1e-6);
    std::printf("  classical ESN (%d neurons) accuracy:   %.3f\n", neurons,
                eacc);
  }
  return 0;
}
