// E8 -- The reservoir-computing measurement challenge (paper SS II-C):
// "it will be essential to design measurement schemes that define the
// input to the trainable classical layer without incurring large shot
// noise overhead, which quickly degrades performance."
//
// One dynamics pass; at every step the exact Fock distribution is
// recorded alongside multinomially sampled estimates at several shot
// budgets. Reported: test NMSE vs shots per time step.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_qrc_shotnoise] E8: NMSE vs measurement shots\n\n");
  Rng rng(5);
  const int length = 170;
  const SeriesTask task = make_narma(2, length, rng);

  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = 6;
  cfg.kappa = 0.35;
  cfg.kerr = 1.0;
  cfg.input_gain = 1.5;
  cfg.rk4_steps_per_tau = 10;
  OscillatorReservoir reservoir(cfg);

  const std::vector<std::size_t> budgets{16, 64, 256, 1024, 4096};
  // exact features + one feature matrix per shot budget, single pass.
  RMatrix exact(task.input.size(), reservoir.num_features());
  std::vector<RMatrix> sampled;
  for (std::size_t b = 0; b < budgets.size(); ++b)
    sampled.emplace_back(task.input.size(), reservoir.num_features());
  Rng srng(123);
  reservoir.reset();
  for (std::size_t t = 0; t < task.input.size(); ++t) {
    reservoir.step(task.input[t]);
    const auto f = reservoir.features();
    for (std::size_t j = 0; j < f.size(); ++j) exact(t, j) = f[j];
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto fs = reservoir.features_sampled(budgets[b], srng);
      for (std::size_t j = 0; j < fs.size(); ++j) sampled[b](t, j) = fs[j];
    }
  }

  ConsoleTable table({"shots/step", "test NMSE", "penalty vs exact"});
  const EvalResult ideal = evaluate_readout(exact, task.target, 20, 100,
                                            1e-5);
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const EvalResult ev = evaluate_readout(sampled[b], task.target, 20, 100,
                                           1e-4);
    table.add_row({fmt_int(static_cast<long long>(budgets[b])),
                   fmt(ev.test_nmse, 4),
                   fmt(ev.test_nmse / ideal.test_nmse, 2)});
  }
  table.add_row({"exact", fmt(ideal.test_nmse, 4), "1.00"});
  table.print(std::cout);
  std::printf("\npaper claim shape: performance degrades quickly as the "
              "shot budget shrinks; real-time operation needs a "
              "low-overhead measurement scheme.\n");
  return 0;
}
