// E3 -- The 2+1D pure-gauge opportunity (paper SS II-A, citing [12]):
// dual-variable rotor Hamiltonian on the Table I 9x2 ladder with d >= 4.
//
// Two parts: (a) validation on a small instance (2x2, d = 4): Trotterized
// real-time evolution against exact diagonalization; (b) resource
// estimate of the full 9x2 footprint on the forecast device, including
// the swap-network overhead the paper anticipates.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_sqed_rotor2d] E3: 2+1D rotor ladder\n\n");

  // --- (a) small-instance validation -----------------------------------
  const GaugeModelParams params{4, 1.0, 1.0};
  const Hamiltonian h22 = gauge_ladder_2d(2, 2, params);
  const double t = 1.0;
  const Matrix exact = exact_evolution(h22, t);
  ConsoleTable acc({"Trotter steps", "gate count", "process infidelity"});
  for (int steps : {2, 4, 8, 16}) {
    const Circuit c = native_trotter_circuit(h22, {2, t / steps, steps});
    const double infid =
        1.0 - unitary_fidelity(circuit_unitary(c), exact);
    acc.add_row({fmt_int(steps), fmt_int(static_cast<long long>(c.size())),
                 fmt_sci(infid)});
  }
  std::printf("2x2 ladder, d=4: Trotter vs exact evolution (t = %.1f)\n", t);
  acc.print(std::cout);

  // --- (b) 9x2 resource estimate ---------------------------------------
  Rng rng(3);
  const Processor proc = Processor::forecast_device(&rng);
  const AppEstimate est = estimate_sqed(9, 2, 4, proc, rng);
  std::printf("\n9x2 ladder, d=4 on the forecast device:\n");
  ConsoleTable res({"metric", "value"});
  res.add_row({"rotor sites (modes)", fmt_int(est.modes_needed)});
  res.add_row({"equivalent qubits", fmt(est.hilbert_qubits, 1)});
  res.add_row({"logical gates / Trotter step",
               fmt_int(static_cast<long long>(est.unit_gates))});
  res.add_row({"routed physical ops",
               fmt_int(static_cast<long long>(est.routed_gates))});
  res.add_row({"routing swaps (swap network)", fmt_int(est.swaps)});
  res.add_row({"step makespan (us)", fmt(est.unit_duration * 1e6, 1)});
  res.add_row({"forecast step fidelity", fmt_sci(est.unit_fidelity)});
  res.print(std::cout);

  const int steps_per_t1 = static_cast<int>(
      proc.mode(0).t1 / est.unit_duration);
  std::printf("\nTrotter steps within one cavity T1: ~%d\n", steps_per_t1);

  // --- (c) beyond 2D: the swap-network cost of a 3D lattice -------------
  // Paper SS II-A: "Going beyond 2D could also be possible for a small
  // number of sites in the near term ... and use a swap network to allow
  // 3D interactions." The third dimension creates long-range bonds on the
  // linear cavity chain; routing makes that cost explicit.
  std::printf("\n3D lattice (d=4): swap-network overhead vs 2D at 12 "
              "sites:\n");
  const Processor device = derate_for_levels(proc, 4);
  ConsoleTable three_d({"lattice", "sites", "bonds", "routed ops",
                        "swaps (aware)", "swaps (identity)",
                        "swaps (id, greedy)", "makespan (us)"});
  for (const auto& [name, h] : std::vector<std::pair<std::string,
                                                     Hamiltonian>>{
           {"6x2 (2D)", gauge_ladder_2d(6, 2, params)},
           {"3x2x2 (3D)", gauge_lattice_3d(3, 2, 2, params)}}) {
    const Circuit step = native_trotter_circuit(h, {2, 0.1, 1});
    const auto aware = transpile(step, device);
    TranspileOptions naive;
    naive.use_noise_aware_mapping = false;
    const auto identity = transpile(step, device, naive);
    // The greedy seed router under identity placement quantifies the
    // lookahead router's benefit.
    TranspileOptions greedy = naive;
    greedy.commute_gates = false;
    greedy.lookahead_routing = false;
    const auto seed_router = transpile(step, device, greedy);
    three_d.add_row(
        {name, fmt_int(static_cast<long long>(h.space().num_sites())),
         fmt_int(static_cast<long long>(h.num_terms() -
                                        h.space().num_sites())),
         fmt_int(static_cast<long long>(aware->physical.size())),
         fmt_int(aware->swaps_inserted),
         fmt_int(identity->swaps_inserted),
         fmt_int(seed_router->swaps_inserted),
         fmt(aware->schedule.makespan * 1e6, 1)});
  }
  three_d.print(std::cout);
  std::printf("noise-aware mapping absorbs the 3D locality at this size; "
              "identity placement needs the swap network (and the "
              "lookahead router cuts it vs the greedy seed).\n");
  return 0;
}
