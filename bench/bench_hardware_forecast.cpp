// E10 -- The paper's SS I hardware forecast: "a multi-cell array composed
// by ~10 linearly connected cavities, each contributing ~4 modes that can
// be occupied by d ~ 10 photons with millisecond T1 lifetime ... Such a
// system would exceed 100 qubits in Hilbert space dimension."
//
// Reported: device accounting (modes, equivalent qubits), the native
// error model, coherence-limited circuit depths, and the noise-aware
// mapper's benefit on a coherence-disordered device.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_hardware_forecast] E10: forecast device\n\n");
  Rng rng(23);
  const Processor proc = Processor::forecast_device(&rng);
  std::printf("%s\n\n", proc.to_string().c_str());

  ConsoleTable acct({"metric", "value"});
  acct.add_row({"cavities", fmt_int(proc.num_cavities())});
  acct.add_row({"modes", fmt_int(proc.num_modes())});
  acct.add_row({"levels per mode", fmt_int(proc.mode(0).dim)});
  acct.add_row({"equivalent qubits (log2 dim)",
                fmt(proc.equivalent_qubits(), 1)});
  acct.add_row({"exceeds 100 qubits?",
                proc.equivalent_qubits() > 100.0 ? "yes" : "no"});
  acct.print(std::cout);

  std::printf("\nnative op error model (best mode):\n");
  ConsoleTable errs({"op", "duration (us)", "error"});
  const GateDurations& dur = proc.durations();
  errs.add_row({"displacement", fmt(dur.displacement * 1e6, 3),
                fmt_sci(proc.native_op_error(NativeOp::kDisplacement, 0))});
  errs.add_row({"SNAP", fmt(dur.snap * 1e6, 3),
                fmt_sci(proc.native_op_error(NativeOp::kSnap, 0))});
  errs.add_row({"cross-Kerr CZ (d=10)",
                fmt(dur.cross_kerr_full * 0.9 * 1e6, 3),
                fmt_sci(proc.two_mode_error(0, 1))});
  errs.add_row({"beamsplitter bridge", fmt(dur.beamsplitter * 2e6, 3),
                fmt_sci(proc.two_mode_error(3, 4))});
  errs.print(std::cout);

  // Coherence-limited depth: how many two-mode gates fit in a T1.
  const double cz_time = dur.cross_kerr_full * 0.9;
  const double cz_err = proc.two_mode_error(0, 1);
  std::printf("\ncoherence-limited budget per mode pair:\n");
  std::printf("  CZ gates within one cavity T1: %.0f\n",
              proc.mode(0).t1 / cz_time);
  std::printf("  CZ gates before 50%% fidelity:  %.0f\n",
              std::log(0.5) / std::log(1.0 - cz_err));

  // Mapper benefit on the disordered device with a routed workload
  // (device derated to the application's d = 4 occupation).
  const Hamiltonian h = gauge_ladder_2d(9, 2, {4, 1.0, 1.0});
  const Circuit step = native_trotter_circuit(h, {2, 0.1, 1});
  const Processor device = derate_for_levels(proc, 4);
  TranspileOptions aware;
  TranspileOptions naive;
  naive.use_noise_aware_mapping = false;
  const auto a = transpile(step, device, aware);
  const auto b = transpile(step, device, naive);
  std::printf("\n9x2 rotor Trotter step, noise-aware vs identity mapping:\n");
  ConsoleTable cmp({"mapping", "predicted cost", "swaps", "makespan (us)",
                    "fidelity"});
  cmp.add_row({"noise-aware", fmt(a->mapping.cost, 4),
               fmt_int(a->swaps_inserted),
               fmt(a->schedule.makespan * 1e6, 1),
               fmt_sci(a->schedule.total_fidelity)});
  cmp.add_row({"identity", fmt(b->mapping.cost, 4),
               fmt_int(b->swaps_inserted),
               fmt(b->schedule.makespan * 1e6, 1),
               fmt_sci(b->schedule.total_fidelity)});
  cmp.print(std::cout);
  return 0;
}
