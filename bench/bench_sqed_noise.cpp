// E2 -- The sQED noise-tolerance comparison (paper SS II-A, citing [11]):
// "simulations showed that using the most native qutrit encodings
// tolerated gate errors 10-100 times higher than qubit encodings."
//
// Protocol: quench the truncated U(1) gauge chain, extract the mass-gap
// frequency from <E>(t), and scan the depolarizing gate-error scale until
// the extraction breaks (10% tolerance). Reported: threshold per encoding
// and the qudit/qubit ratio.
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  std::printf("[bench_sqed_noise] E2: gap-extraction noise thresholds\n\n");

  auto noise_for = [](double scale) {
    NoiseParams p;
    p.depol_1q = 0.1 * scale;
    p.depol_2q = scale;
    return p;
  };
  const std::vector<double> scales{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};
  const double dt = 0.25;
  const int samples = 127;

  ConsoleTable table({"Ns", "d", "encoding", "sites", "gates/step",
                      "threshold p*", "ratio vs qubit"});

  for (int ns : {2, 3}) {
    const GaugeModelParams params{3, 1.0, 1.0};
    const Hamiltonian h = gauge_chain(ns, params);
    const Circuit native = native_trotter_circuit(h, {2, dt / 2, 2});
    std::vector<int> init_native(static_cast<std::size_t>(ns), 1);
    const ThresholdScan scan_native = scan_noise_threshold(
        native, electric_energy_diagonal(h.space()), init_native, noise_for,
        scales, samples, dt, 0.1);

    const Hamiltonian enc = encode_binary(h);
    const Circuit binary = binary_trotter_circuit(enc, {2, dt / 2, 2});
    std::vector<int> init_binary;
    for (int s = 0; s < ns; ++s) {
      init_binary.push_back(1);  // level 1 = m = 0 in binary (1, 0)
      init_binary.push_back(0);
    }
    const ThresholdScan scan_binary = scan_noise_threshold(
        binary, electric_energy_diagonal_binary(h.space()), init_binary,
        noise_for, scales, samples, dt, 0.1);

    table.add_row({fmt_int(ns), "3", "native qutrit",
                   fmt_int(static_cast<long long>(ns)),
                   fmt_int(static_cast<long long>(native.size() / 2)),
                   fmt_sci(scan_native.threshold),
                   fmt(scan_native.threshold / scan_binary.threshold, 1)});
    table.add_row({fmt_int(ns), "3", "binary qubit",
                   fmt_int(static_cast<long long>(2 * ns)),
                   fmt_int(static_cast<long long>(binary.size() / 2)),
                   fmt_sci(scan_binary.threshold), "1.0"});
  }
  table.print(std::cout);
  std::printf("\npaper claim: native qutrit encodings tolerate 10-100x "
              "higher gate error than qubit encodings.\n");
  return 0;
}
