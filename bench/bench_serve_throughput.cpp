// Serve-layer throughput microbenchmarks (google-benchmark): plan-aware
// fingerprint batching vs naive one-job-per-request dispatch, plus the
// mixed multi-tenant workload the paper frames (QAOA + QRC + SQED tenants
// sharing one oversubscribed device).
//
// The CI perf-smoke job runs this binary with --benchmark_format=json and
// archives BENCH_serve_throughput.json; items_per_second is jobs/sec
// through the JobService. The batched/naive pair on the same-circuit
// burst is the headline comparison: batching amortizes fingerprinting,
// queue wakeups, and dispatch overhead over a whole burst and shares one
// CompiledCircuit across it.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/quditsim.h"

namespace {

using namespace qs;

NoiseModel device_noise() {
  NoiseParams p;
  p.depol_2q = 0.02;
  p.loss_per_gate = 0.01;
  return NoiseModel(p);
}

/// Small layered qutrit-pair circuit: cheap enough that dispatch overhead
/// matters, real enough to exercise the full compile->execute path.
Circuit burst_circuit(int layers) {
  Circuit c(QuditSpace::uniform(2, 3));
  Rng rng(21);
  for (int layer = 0; layer < layers; ++layer) {
    c.add("U0", random_unitary(3, rng), {0});
    c.add("U1", random_unitary(3, rng), {1});
    c.add("CSUM", csum(3, 3), {0, 1});
  }
  return c;
}

/// Pushes `jobs` identical-circuit jobs through a service and drains it.
/// With `traced`, every job records its full span timeline into a
/// tracer sized so nothing is ring-dropped mid-iteration.
void run_burst(benchmark::State& state, std::size_t max_batch,
               bool traced = false) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  const TrajectoryBackend backend{device_noise()};
  const Circuit circuit = burst_circuit(4);
  obs::TracerOptions tracer_options;
  tracer_options.shards = 4;
  tracer_options.capacity_per_shard = 16384;
  obs::Tracer tracer(tracer_options);
  for (auto _ : state) {
    ServiceOptions options;
    options.workers = 4;
    options.max_batch = max_batch;
    options.start_paused = true;  // accumulate the burst, then release
    if (traced) options.tracer = &tracer;
    JobService service(backend, options);
    for (std::size_t j = 0; j < jobs; ++j)
      service.submit(JobSpec(circuit).with_shots(8));
    service.resume();
    service.shutdown(ShutdownMode::kDrain);
    benchmark::DoNotOptimize(service.telemetry().completed);
    tracer.clear();  // fresh ring per iteration (no-op when untraced)
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(jobs));
}

void BM_ServeSameCircuitBurst_Batched(benchmark::State& state) {
  run_burst(state, 16);
}
BENCHMARK(BM_ServeSameCircuitBurst_Batched)->Arg(64)->Arg(256);

void BM_ServeSameCircuitBurst_Naive(benchmark::State& state) {
  run_burst(state, 1);  // one job per dispatch: no fingerprint batching
}
BENCHMARK(BM_ServeSameCircuitBurst_Naive)->Arg(64)->Arg(256);

/// The batched burst with full span tracing + metrics enabled: the
/// tracing-overhead budget pair for tools/bench_diff.py, which fails CI
/// if this falls more than 5% below _Batched in the same run.
void BM_ServeSameCircuitBurst_Traced(benchmark::State& state) {
  run_burst(state, 16, /*traced=*/true);
}
BENCHMARK(BM_ServeSameCircuitBurst_Traced)->Arg(64)->Arg(256);

/// Mixed 3-tenant workload: distinct circuit families and priorities,
/// submitted round-robin so the scheduler interleaves, batches, and
/// fair-shares all at once.
void BM_ServeMixedTenantWorkload(benchmark::State& state) {
  const std::size_t jobs_per_tenant = static_cast<std::size_t>(state.range(0));
  const TrajectoryBackend backend{device_noise()};
  const std::vector<Circuit> circuits = {burst_circuit(2), burst_circuit(4),
                                         burst_circuit(6)};
  const char* tenants[] = {"qaoa", "qrc", "sqed"};
  for (auto _ : state) {
    ServiceOptions options;
    options.workers = 4;
    options.max_batch = 16;
    options.start_paused = true;
    JobService service(backend, options);
    for (std::size_t j = 0; j < jobs_per_tenant; ++j)
      for (std::size_t t = 0; t < 3; ++t)
        service.submit(JobSpec(circuits[t])
                           .with_tenant(tenants[t])
                           .with_priority(static_cast<int>(t))
                           .with_shots(8));
    service.resume();
    service.shutdown(ShutdownMode::kDrain);
    benchmark::DoNotOptimize(service.telemetry().completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(3 * jobs_per_tenant));
}
BENCHMARK(BM_ServeMixedTenantWorkload)->Arg(32);

}  // namespace
