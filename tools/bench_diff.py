#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON artifacts.

Compares the BENCH_*.json files of a baseline directory (the previous
successful CI run's `benchmarks` artifact) against the current run's,
benchmark by benchmark, and fails when any benchmark regressed beyond the
threshold: items_per_second lower than baseline (higher is better) or --
when a benchmark reports no throughput -- real_time higher than baseline
(lower is better).

Bootstrap rule: a missing baseline directory, a baseline file absent for
a current file, or a baseline entry absent for a benchmark passes with a
note instead of failing -- the first run on a branch (or a newly added
benchmark) establishes the baseline rather than gating against nothing.

Overhead budgets: OVERHEAD_PAIRS compares instrumented benchmark
variants against their plain twins *within the current run alone* (no
baseline needed, so machine-speed differences between CI runs cancel
out). The serve tracing pair holds the <5% enabled-tracing budget from
docs/ARCHITECTURE.md "Observability layer": if the traced burst falls
more than 5% below the untraced burst, the gate fails.

Trajectory: --trajectory-out writes a JSON record of every benchmark
actually compared against a baseline (name, metric, both values, ratio,
verdict). An empty `compared` list means the gate ran but diffed
NOTHING -- the silent failure mode where the baseline artifact never
arrives and every run "passes" by bootstrapping forever. CI archives
the trajectory so that state is visible, and the self-test asserts the
trajectory is non-empty after a green run with a baseline present.

Usage:
  bench_diff.py [--threshold 0.15] [--trajectory-out PATH]
                BASELINE_DIR CURRENT_DIR
  bench_diff.py --self-test

The self-test synthesizes a baseline/current pair with an injected 40%
slowdown and asserts the gate fails on it (and passes on the unchanged
pair and on a missing baseline), and likewise asserts the overhead gate
trips on a 10% tracing slowdown but passes a 3% one -- so CI
demonstrates both failure modes on every run instead of trusting them
untested.
"""

import argparse
import json
import os
import sys
import tempfile

PASS, FAIL = 0, 1

# (plain benchmark, instrumented variant, allowed fractional slowdown).
# Compared per matching argument suffix (".../64" vs ".../64") inside
# one run's entries, so the check is immune to cross-run machine noise.
OVERHEAD_PAIRS = [
    ("BM_ServeSameCircuitBurst_Batched", "BM_ServeSameCircuitBurst_Traced",
     0.05),
    # Flight-recorder budget: a journaled burst must stay within 5% of
    # the plain one (bench_scenario.cpp) -- lifecycle recording is
    # designed to be left on.
    ("BM_ScenarioBurst_Plain", "BM_ScenarioBurst_Journaled", 0.05),
]


def load_entries(path):
    """name -> metrics dict for one google-benchmark JSON file.

    Prefers the `mean` aggregate when repetitions produced one; otherwise
    uses the plain iteration entry.
    """
    with open(path) as f:
        data = json.load(f)
    entries = {}
    for bench in data.get("benchmarks", []):
        run_type = bench.get("run_type", "iteration")
        if run_type == "aggregate" and bench.get("aggregate_name") != "mean":
            continue
        name = bench.get("run_name", bench.get("name"))
        if name is None:
            continue
        if run_type == "aggregate" or name not in entries:
            entries[name] = bench
    return entries


def compare_entry(name, base, cur, threshold):
    """Returns (ok, message, record) for one benchmark in both runs.

    `record` is the trajectory entry (None when nothing comparable).
    """
    base_ips = base.get("items_per_second")
    cur_ips = cur.get("items_per_second")
    if base_ips and cur_ips:
        ratio = cur_ips / base_ips
        ok = ratio >= 1.0 - threshold
        verdict = "ok" if ok else "REGRESSION"
        record = {"name": name, "metric": "items_per_second",
                  "baseline": base_ips, "current": cur_ips,
                  "ratio": ratio, "verdict": verdict}
        return ok, (
            f"{verdict}: {name}: items_per_second {base_ips:.4g} -> "
            f"{cur_ips:.4g} ({(ratio - 1.0) * 100.0:+.1f}%)"), record
    base_t = base.get("real_time")
    cur_t = cur.get("real_time")
    if not base_t or not cur_t:
        return True, f"skip: {name}: no comparable metric", None
    ratio = cur_t / base_t
    ok = ratio <= 1.0 + threshold
    verdict = "ok" if ok else "REGRESSION"
    record = {"name": name, "metric": "real_time",
              "baseline": base_t, "current": cur_t,
              "ratio": ratio, "verdict": verdict}
    return ok, (
        f"{verdict}: {name}: real_time {base_t:.4g} -> {cur_t:.4g} "
        f"{cur.get('time_unit', 'ns')} ({(ratio - 1.0) * 100.0:+.1f}%)"), \
        record


def check_overhead(entries, pairs=OVERHEAD_PAIRS):
    """Intra-run instrumented-vs-plain budget check; returns failures."""
    failures = 0
    for plain_name, variant_name, budget in pairs:
        for name, cur in sorted(entries.items()):
            prefix, sep, arg = name.partition("/")
            if prefix != variant_name:
                continue
            plain = entries.get(plain_name + sep + arg)
            if plain is None:
                print(f"skip: {name}: no '{plain_name}{sep}{arg}' "
                      "in this run to compare against")
                continue
            plain_ips = plain.get("items_per_second")
            cur_ips = cur.get("items_per_second")
            if not plain_ips or not cur_ips:
                print(f"skip: {name}: no items_per_second on both sides")
                continue
            ratio = cur_ips / plain_ips
            ok = ratio >= 1.0 - budget
            verdict = "ok" if ok else "OVERHEAD"
            print(f"{verdict}: {name}: items_per_second {cur_ips:.4g} vs "
                  f"{plain_name}{sep}{arg} {plain_ips:.4g} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%, budget "
                  f"-{budget * 100.0:.0f}%)")
            if not ok:
                failures += 1
    return failures


def write_trajectory(path, compared, bootstrapped):
    """Persists the diff's trajectory: what was actually compared. An
    empty `compared` with bootstrapped=False would mean baselines exist
    but matched nothing -- the state this record exists to expose."""
    if path is None:
        return
    with open(path, "w") as f:
        json.dump({"compared": compared, "bootstrapped": bootstrapped}, f,
                  indent=2)
    print(f"bench_diff: trajectory ({len(compared)} comparison(s), "
          f"bootstrapped={bootstrapped}) -> {path}")


def diff_dirs(baseline_dir, current_dir, threshold, trajectory_out=None):
    """Compares every BENCH_*.json under current against baseline, and
    holds the intra-run OVERHEAD_PAIRS budgets regardless of whether a
    baseline exists."""
    current_files = sorted(
        f for f in os.listdir(current_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not current_files:
        print(f"bench_diff: no BENCH_*.json under {current_dir}")
        return FAIL

    failures = 0
    for fname in current_files:
        failures += check_overhead(
            load_entries(os.path.join(current_dir, fname)))
    baseline_files = (sorted(
        f for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
                      if os.path.isdir(baseline_dir) else [])
    if not baseline_files:
        # Missing OR empty baseline directory: CI mkdir -p's the
        # download target, so "no artifact arrived" looks like an empty
        # dir, not an absent one. Both bootstrap.
        print(f"bench_diff: no baseline under {baseline_dir}; "
              "bootstrapping (this run becomes the baseline)")
        write_trajectory(trajectory_out, [], bootstrapped=True)
        return FAIL if failures else PASS

    compared = []
    for fname in current_files:
        base_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(base_path):
            print(f"bootstrap: {fname}: no baseline file")
            continue
        base_entries = load_entries(base_path)
        cur_entries = load_entries(os.path.join(current_dir, fname))
        for name, cur in sorted(cur_entries.items()):
            base = base_entries.get(name)
            if base is None:
                print(f"bootstrap: {name}: not in baseline")
                continue
            ok, message, record = compare_entry(name, base, cur, threshold)
            print(message)
            if record is not None:
                record["file"] = fname
                compared.append(record)
            if not ok:
                failures += 1
    write_trajectory(trajectory_out, compared, bootstrapped=False)
    if not compared:
        # A baseline directory existed but nothing in it matched: the
        # artifact plumbing is broken, not the code under test. Fail
        # loudly instead of green-bootstrapping forever.
        print("bench_diff: baseline present but ZERO benchmarks compared "
              "-- empty trajectory, check the baseline artifact download")
        return FAIL
    if failures:
        print(f"bench_diff: {failures} benchmark(s) regressed beyond the "
              f"{threshold * 100.0:.0f}% threshold or blew an overhead "
              "budget")
        return FAIL
    print("bench_diff: no regressions beyond threshold, "
          "overhead budgets held")
    return PASS


def synthetic(path, time_ns, items_per_second, name="BM_Synthetic/1000",
              extra=()):
    benchmarks = [{
        "name": bench_name,
        "run_name": bench_name,
        "run_type": "iteration",
        "real_time": bench_time,
        "cpu_time": bench_time,
        "time_unit": "ns",
        "items_per_second": bench_ips,
    } for bench_name, bench_time, bench_ips in
        [(name, time_ns, items_per_second)] + list(extra)]
    with open(path, "w") as f:
        json.dump({"benchmarks": benchmarks}, f)


def self_test():
    """Asserts the gate's three behaviors: pass, bootstrap, and fail."""
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline")
        current = os.path.join(tmp, "current")
        os.makedirs(baseline)
        os.makedirs(current)
        synthetic(os.path.join(baseline, "BENCH_synth.json"), 100.0, 1e6)

        # Unchanged performance passes, and one green run with a
        # baseline present leaves a NON-EMPTY trajectory -- the record
        # that the gate diffed something real instead of silently
        # bootstrapping forever.
        synthetic(os.path.join(current, "BENCH_synth.json"), 101.0, 0.99e6)
        trajectory_path = os.path.join(tmp, "trajectory.json")
        assert diff_dirs(baseline, current, 0.15,
                         trajectory_out=trajectory_path) == PASS, \
            "unchanged run must pass the gate"
        with open(trajectory_path) as f:
            trajectory = json.load(f)
        assert trajectory["compared"], \
            "green run with a baseline must record a non-empty trajectory"
        assert not trajectory["bootstrapped"]
        assert trajectory["compared"][0]["verdict"] == "ok"

        # Missing baseline bootstraps instead of failing -- and says so
        # in the trajectory.
        assert diff_dirs(os.path.join(tmp, "absent"), current, 0.15,
                         trajectory_out=trajectory_path) == PASS, \
            "missing baseline must bootstrap-pass"
        with open(trajectory_path) as f:
            trajectory = json.load(f)
        assert not trajectory["compared"] and trajectory["bootstrapped"]

        # A baseline that matches NOTHING current (stale names: the
        # broken-artifact-plumbing signature) must fail, not bootstrap.
        stale = os.path.join(tmp, "stale")
        os.makedirs(stale)
        synthetic(os.path.join(stale, "BENCH_other.json"), 100.0, 1e6,
                  name="BM_Gone/1")
        assert diff_dirs(stale, current, 0.15) == FAIL, \
            "baseline matching nothing must fail as empty trajectory"

        # An injected 40% slowdown must trip the gate.
        synthetic(os.path.join(current, "BENCH_synth.json"), 140.0, 1e6 / 1.4)
        assert diff_dirs(baseline, current, 0.15) == FAIL, \
            "injected slowdown must fail the gate"

        # Tracing-overhead budget (intra-run, no baseline involvement):
        # a 3% traced-vs-plain gap holds the 5% budget...
        plain, traced = OVERHEAD_PAIRS[0][:2]
        synthetic(os.path.join(current, "BENCH_synth.json"), 100.0, 1e6,
                  name=plain + "/64",
                  extra=[(traced + "/64", 103.0, 0.97e6)])
        assert diff_dirs(os.path.join(tmp, "absent"), current, 0.15) == PASS, \
            "3% tracing overhead must hold the 5% budget"
        # ...and a 10% gap blows it, even with no baseline to diff.
        synthetic(os.path.join(current, "BENCH_synth.json"), 100.0, 1e6,
                  name=plain + "/64",
                  extra=[(traced + "/64", 110.0, 0.90e6)])
        assert diff_dirs(os.path.join(tmp, "absent"), current, 0.15) == FAIL, \
            "10% tracing overhead must blow the 5% budget"
    print("bench_diff: self-test passed (gate demonstrated to fail on "
          "injected slowdown and on blown tracing-overhead budget)")
    return PASS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected slowdown")
    parser.add_argument("--trajectory-out", metavar="PATH", default=None,
                        help="write a JSON record of every comparison made")
    parser.add_argument("dirs", nargs="*",
                        metavar="BASELINE_DIR CURRENT_DIR")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if len(args.dirs) != 2:
        parser.error("expected BASELINE_DIR CURRENT_DIR (or --self-test)")
    return diff_dirs(args.dirs[0], args.dirs[1], args.threshold,
                     trajectory_out=args.trajectory_out)


if __name__ == "__main__":
    sys.exit(main())
