#!/usr/bin/env python3
"""Byte-exact journal replay checker.

A flight-recorder journal embeds the complete WorkloadSpec that produced
it in its ``H spec=...`` header. This tool re-runs scenario_runner from
that header and byte-diffs the fresh journal against the original: any
divergence -- a single flipped result-digest bit, one missing event, a
reordered export -- fails loudly with the first differing lines.

The re-run deliberately picks its OWN worker count (``--workers``,
default 2): the replay contract says the journal bytes are independent
of it, so replaying a journal recorded at 8 workers with 2 workers is
not a weaker check but a stronger one.

Usage:
    tools/replay_check.py journal.qsj [--runner build/scenario_runner]
                                      [--workers N]

Exit codes: 0 = byte-identical, 1 = divergence or error.
"""

import argparse
import pathlib
import subprocess
import sys
import tempfile

HEADER_PREFIX = "H spec="
MAGIC = "QSJ1"


def read_spec(journal_path: pathlib.Path) -> str:
    """Extracts the WorkloadSpec line from the journal header."""
    with journal_path.open("r", encoding="utf-8") as handle:
        first = handle.readline().rstrip("\n")
        if first != MAGIC:
            raise SystemExit(f"{journal_path}: not a journal (missing {MAGIC})")
        for line in handle:
            line = line.rstrip("\n")
            if line.startswith(HEADER_PREFIX):
                return line[len(HEADER_PREFIX):]
            if line.startswith("E ") or line.startswith("F "):
                break
    raise SystemExit(f"{journal_path}: no '{HEADER_PREFIX}' header -- "
                     "was it produced by scenario_runner?")


def first_divergence(original: bytes, replay: bytes) -> str:
    """Human-readable description of the first differing line."""
    a_lines = original.decode("utf-8", "replace").splitlines()
    b_lines = replay.decode("utf-8", "replace").splitlines()
    for i, (a, b) in enumerate(zip(a_lines, b_lines), start=1):
        if a != b:
            return f"line {i}:\n  original: {a}\n  replay:   {b}"
    if len(a_lines) != len(b_lines):
        return (f"line count: original {len(a_lines)} lines, "
                f"replay {len(b_lines)} lines")
    return "byte-level difference inside identical lines (encoding?)"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("journal", type=pathlib.Path,
                        help="journal file written by scenario_runner")
    parser.add_argument("--runner", type=pathlib.Path,
                        default=pathlib.Path("build/scenario_runner"),
                        help="scenario_runner binary (default: "
                             "build/scenario_runner)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the re-run (default 2; any "
                             "value must reproduce the same bytes)")
    args = parser.parse_args()

    if not args.journal.is_file():
        print(f"replay_check: no such journal: {args.journal}",
              file=sys.stderr)
        return 1
    if not args.runner.is_file():
        print(f"replay_check: no such runner: {args.runner}", file=sys.stderr)
        return 1

    spec = read_spec(args.journal)
    original = args.journal.read_bytes()

    with tempfile.TemporaryDirectory() as tmp:
        replay_path = pathlib.Path(tmp) / "replay.qsj"
        cmd = [str(args.runner), "--spec", spec, "--workers",
               str(args.workers), "--out", str(replay_path), "--check"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            print("replay_check: re-run failed "
                  f"(exit {proc.returncode}):\n{proc.stderr}",
                  file=sys.stderr)
            return 1
        replay = replay_path.read_bytes()

    if replay == original:
        events = sum(1 for line in original.splitlines()
                     if line.startswith(b"E "))
        print(f"replay_check: PASS -- {len(original)} bytes, "
              f"{events} events reproduced exactly "
              f"(workers={args.workers})")
        return 0

    print("replay_check: FAIL -- replay diverged from the recorded "
          "journal", file=sys.stderr)
    print(first_divergence(original, replay), file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
