#!/usr/bin/env python3
"""Repo invariant linter: determinism and lock-discipline contracts.

The stack's two implicit contracts -- bitwise seed-split determinism and
annotated lock discipline -- are cheap to break with one innocent line
(`std::random_device` in a router, a wall-clock timestamp in a result
path, a bare `std::mutex` invisible to -Wthread-safety). This linter
turns those into CI failures. Rules (see docs/ARCHITECTURE.md
"Concurrency & determinism contract" for the rationale of each):

  nondeterminism   Bans nondeterminism escapes in src/: std::random_device,
                   rand()/srand(), time()/clock(), std::chrono::system_clock
                   (wall clock; steady_clock is fine), and mt19937 engines
                   constructed without an explicit seed. All randomness
                   must flow through qs::Rng / split_seed so results are a
                   pure function of (inputs, seed).

  unordered-iter   Flags iteration over std::unordered_map/set in files
                   that define fingerprint() digests (and any file listed
                   in FINGERPRINT_FILES). Unordered iteration order is
                   implementation-defined, so a digest fed from it would
                   differ across stdlibs/runs and silently poison every
                   cache key derived from it.

  raw-sync         Bans std::mutex / std::condition_variable / std::lock_*
                   in src/ outside common/thread_annotations.h: locks must
                   use the annotated qs::Mutex family so clang's
                   -Wthread-safety analysis sees every acquisition.

  clock            Bans std::chrono::steady_clock / high_resolution_clock
                   in src/ outside obs/clock.h: time must flow through an
                   injected obs::Clock (SteadyClock in production,
                   ManualClock in tests) so deadlines, TTLs, and traces
                   are drivable in virtual time and two traced runs can
                   be bitwise identical.

  value-fingerprint  In cache-key code paths (CACHE_KEY_FILES), bans
                   value-sensitive fingerprint(<circuit>) -- cache keys
                   must use structural_fingerprint so a parametric sweep's
                   bindings all hash to one artifact. A value-sensitive
                   key silently degrades every sweep point to a miss
                   (recompiles per binding), undoing the bind fast path
                   without failing any correctness test.

  amplitude-loop   In src/qudit/ and src/exec/ (outside the kernel layer
                   homes: qudit/kernels.*, qudit/block_plan.*), flags raw
                   amplitude-indexing loops -- BlockPlan offsets-table
                   indexing and `base + a * stride` address arithmetic.
                   Every matvec inner loop must live in kernels.h/.cpp so
                   the SIMD dispatch tiers, the bitwise determinism
                   contract, and the dispatch-count telemetry cover it; a
                   raw loop elsewhere silently forks the arithmetic.

  job-state        In src/serve/, bans direct writes to a JobRecord's
                   `status` field outside JobRecord::transition_locked
                   (src/serve/job.h). The transition helper is the one
                   place the job state machine moves AND the flight
                   recorder (obs/journal.h) observes the edge; a direct
                   write elsewhere would mutate state invisibly to the
                   journal, silently breaking the replay contract
                   (bitwise-identical journals for any worker count).

Suppression: append `// lint:allow(<rule>): <why>` to the offending line,
or put it on its own line directly above (for lines with no room under
the 80-column format limit). The reason is mandatory; a bare allow is
itself a finding.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# Files whose whole job is to wrap the raw primitives.
RAW_SYNC_HOME = "src/common/thread_annotations.h"
CLOCK_HOME = "src/obs/clock.h"

# Files holding order-sensitive digest/serialization code, in addition to
# any file that *defines* a fingerprint() function (detected below).
FINGERPRINT_FILES = {
    "src/common/fingerprint.h",
}

# Files that derive cache keys from circuits. Keys here must hash the
# circuit's *structure* (structural_fingerprint), never its bound
# parameter values, or parametric sweeps stop sharing artifacts.
CACHE_KEY_FILES = {
    "src/exec/plan.cpp",
    "src/compiler/transpile_cache.cpp",
    "src/serve/service.cpp",
}

# The kernel layer itself: the only place amplitude-indexing loops belong.
AMPLITUDE_LOOP_HOMES = {
    "src/qudit/kernels.h",
    "src/qudit/kernels.cpp",
    "src/qudit/block_plan.h",
    "src/qudit/block_plan.cpp",
}
# Directories the amplitude-loop rule polices.
AMPLITUDE_LOOP_SCOPE = ("src/qudit/", "src/exec/")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)(:\s*\S.*)?")

NONDETERMINISM_PATTERNS = [
    (re.compile(r"\bstd::random_device\b|\brandom_device\b"),
     "std::random_device draws entropy from the OS; derive seeds via "
     "split_seed instead"),
    (re.compile(r"\bstd::rand\b|\brand\s*\(|\bsrand\s*\("),
     "C rand()/srand() is hidden global state; use qs::Rng"),
    (re.compile(r"\btime\s*\(|\bstd::time\b|\bgettimeofday\b|\blocaltime\b"),
     "wall-clock reads make results depend on when they ran"),
    (re.compile(r"\bclock\s*\("),
     "processor-clock reads are nondeterministic; use Stopwatch for "
     "telemetry, never in result paths"),
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is the wall clock; time must flow "
     "through obs::Clock (src/obs/clock.h)"),
    # An mt19937 declared/constructed with no seed argument silently uses
    # the fixed default seed -- usually a copy-paste away from "every
    # worker draws the same stream". Engines must take an explicit seed.
    (re.compile(r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))"),
     "mt19937 without an explicit seed; thread a split_seed-derived seed "
     "through qs::Rng"),
    (re.compile(r"\bmt19937(?:_64)?\s*(?:\(\s*\)|\{\s*\})"),
     "temporary mt19937 without an explicit seed"),
]

RAW_CLOCK_RE = re.compile(r"\b(steady_clock|high_resolution_clock)\b")

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")

# A line that *defines* a fingerprint digest function (not a call site):
# a uint64 return type directly followed by a fingerprint name.
FINGERPRINT_DEF_RE = re.compile(
    r"(?:std::)?uint64_t\s+[\w:]*fingerprint\s*\(")

# A value-sensitive circuit digest call: fingerprint( -- not preceded by
# structural_ -- whose argument names a circuit (circuit/circ/logical/
# physical, possibly behind a member or pointer access).
VALUE_FP_RE = re.compile(
    r"(?<!structural_)\bfingerprint\s*\(\s*[\w.>&*-]*"
    r"(?:circuit|circ\b|logical|physical)")

AMPLITUDE_LOOP_PATTERNS = [
    (re.compile(r"\.offsets\s*\["),
     "raw BlockPlan offsets-table indexing; route this loop through the "
     "kernels:: apply/accumulate entry points (src/qudit/kernels.h)"),
    (re.compile(r"\+\s*\w+\s*\*\s*(?:site_stride|stride)\b"),
     "raw strided amplitude address arithmetic; route this loop through "
     "the kernels:: entry points (src/qudit/kernels.h)"),
]

# Directory whose job-state machine the journal must observe completely.
JOB_STATE_SCOPE = "src/serve/"

# A write to a job record's `status` member: member access (r->status =,
# record.status =) or the bare field inside JobRecord's own methods
# (status = to). Comparisons (==, !=, <=, >=) do not match; neither do
# declarations like `JobStatus status = ...` (the field name there is
# preceded by its type, not by `.`/`->`/line start).
JOB_STATE_RE = re.compile(r"(?:\.|->|^\s*)status\s*=(?![=])")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;(){]*>\s+(\w+)\s*[;{=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so rule regexes never fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append(" " * 0)
            out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, msg: str):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.msg}"


def collect_allows(raw_lines: list[str], findings: list[Finding],
                   path: pathlib.Path) -> dict[int, set[str]]:
    """Maps line number -> rules suppressed there. A standalone allow
    comment (nothing but the comment on its line) suppresses the next
    line instead of its own. Reason-less allows are findings themselves
    (the narrow-suppression contract)."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_lines, 1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        if m.group(2) is None:
            findings.append(Finding(
                path, lineno, "allow-without-reason",
                "lint:allow needs a ': <why>' justification"))
            continue
        target = lineno + 1 if line.lstrip().startswith("//") else lineno
        allows.setdefault(target, set()).add(m.group(1))
    return allows


def lint_file(path: pathlib.Path, findings: list[Finding]) -> None:
    raw = path.read_text()
    raw_lines = raw.splitlines()
    allows = collect_allows(raw_lines, findings, path)
    clean_lines = strip_comments_and_strings(raw).splitlines()
    rel = str(path.relative_to(REPO_ROOT))

    def report(lineno: int, rule: str, msg: str) -> None:
        if rule not in allows.get(lineno, set()):
            findings.append(Finding(path, lineno, rule, msg))

    # -- nondeterminism ----------------------------------------------------
    for lineno, line in enumerate(clean_lines, 1):
        for pattern, msg in NONDETERMINISM_PATTERNS:
            if pattern.search(line):
                report(lineno, "nondeterminism", msg)

    # -- unordered-iter ----------------------------------------------------
    clean = "\n".join(clean_lines)
    if rel in FINGERPRINT_FILES or FINGERPRINT_DEF_RE.search(clean):
        unordered_names = set(UNORDERED_DECL_RE.findall(clean))
        for lineno, line in enumerate(clean_lines, 1):
            if not RANGE_FOR_RE.search(line):
                continue
            if "unordered_" in line:
                report(lineno, "unordered-iter",
                       "iterating an unordered container in a fingerprint "
                       "file; order is implementation-defined")
                continue
            for name in unordered_names:
                if re.search(rf":\s*(?:\w+(?:\.|->))*{name}\s*\)", line):
                    report(lineno, "unordered-iter",
                           f"range-for over unordered container '{name}' "
                           "in a fingerprint file")

    # -- value-fingerprint -------------------------------------------------
    if rel in CACHE_KEY_FILES:
        for lineno, line in enumerate(clean_lines, 1):
            if VALUE_FP_RE.search(line):
                report(lineno, "value-fingerprint",
                       "value-sensitive fingerprint() of a circuit in a "
                       "cache-key path; use structural_fingerprint so "
                       "parametric bindings share one cached artifact")

    # -- amplitude-loop ----------------------------------------------------
    if (rel.startswith(AMPLITUDE_LOOP_SCOPE)
            and rel not in AMPLITUDE_LOOP_HOMES):
        for lineno, line in enumerate(clean_lines, 1):
            for pattern, msg in AMPLITUDE_LOOP_PATTERNS:
                if pattern.search(line):
                    report(lineno, "amplitude-loop", msg)

    # -- job-state ---------------------------------------------------------
    if rel.startswith(JOB_STATE_SCOPE):
        for lineno, line in enumerate(clean_lines, 1):
            if JOB_STATE_RE.search(line):
                report(lineno, "job-state",
                       "direct JobStatus write; every transition must go "
                       "through JobRecord::transition_locked so the "
                       "flight-recorder journal observes the edge "
                       "(src/serve/job.h)")

    # -- raw-sync ----------------------------------------------------------
    if rel != RAW_SYNC_HOME:
        for lineno, line in enumerate(clean_lines, 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                report(lineno, "raw-sync",
                       f"std::{m.group(1)} bypasses the annotated "
                       "qs::Mutex/CondVar/MutexLock wrappers "
                       "(common/thread_annotations.h)")
    else:
        # Even the wrapper home allowlists each raw use individually.
        for lineno, line in enumerate(clean_lines, 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                report(lineno, "raw-sync",
                       f"unannotated std::{m.group(1)} in the wrapper "
                       "header itself")

    # -- clock -------------------------------------------------------------
    # Mirrors raw-sync: the wrapper home itself allowlists each raw
    # clock mention per line.
    for lineno, line in enumerate(clean_lines, 1):
        m = RAW_CLOCK_RE.search(line)
        if not m:
            continue
        if rel != CLOCK_HOME:
            report(lineno, "clock",
                   f"std::chrono::{m.group(1)} bypasses the injectable "
                   "obs::Clock (src/obs/clock.h); take a Clock& or use "
                   "obs::TimeBase/TimePoint aliases")
        else:
            report(lineno, "clock",
                   f"raw {m.group(1)} in the clock wrapper itself")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files to lint (default: all of src/)")
    args = parser.parse_args()

    if args.paths:
        files = [p.resolve() for p in args.paths]
    else:
        files = sorted(p for ext in ("*.h", "*.cpp")
                       for p in SRC.rglob(ext))
    findings: list[Finding] = []
    for path in files:
        lint_file(path, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
