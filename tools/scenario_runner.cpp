// Scenario runner CLI: runs a seeded WorkloadSpec through the scenario
// engine and writes the flight-recorder journal, optionally checking
// invariants and printing the SLO table. The replay workflow:
//
//   scenario_runner --seed 7 --ticks 200 --jobs 100000 --workers 8
//       --out journal.qsj --check --slo
//   scenario_runner --spec "<the journal's H spec= header line>" ...
//       (or just: tools/replay_check.py journal.qsj)
//
// Exit codes: 0 = ok, 1 = usage, 2 = invariant violations.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/state_vector_backend.h"
#include "obs/journal.h"
#include "sim/invariants.h"
#include "sim/scenario.h"
#include "sim/slo.h"
#include "sim/workload.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --spec <line>    full WorkloadSpec line (overrides "
         "--seed/--ticks/--jobs)\n"
      << "  --seed <n>       root seed of the standard scenario "
         "(default 7)\n"
      << "  --ticks <n>      virtual ticks (default 200)\n"
      << "  --jobs <n>       scale tenant rates to ~n total jobs "
         "(default 20000)\n"
      << "  --workers <n>    service worker threads (default 2)\n"
      << "  --max-batch <n>  plan-aware batch bound (default 16)\n"
      << "  --out <path>     write the journal here (default stdout)\n"
      << "  --check          run the invariant checker (exit 2 on "
         "violation)\n"
      << "  --slo            print the per-tenant SLO table to stderr\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_line;
  std::string out_path;
  std::uint64_t seed = 7;
  std::uint64_t ticks = 200;
  std::uint64_t jobs = 20000;
  bool check = false;
  bool slo = false;
  qs::sim::ScenarioOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--spec") {
      spec_line = value();
    } else if (arg == "--seed") {
      seed = std::stoull(value());
    } else if (arg == "--ticks") {
      ticks = std::stoull(value());
    } else if (arg == "--jobs") {
      jobs = std::stoull(value());
    } else if (arg == "--workers") {
      options.workers = std::stoull(value());
    } else if (arg == "--max-batch") {
      options.max_batch = std::stoull(value());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--slo") {
      slo = true;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    qs::sim::WorkloadSpec spec;
    if (!spec_line.empty()) {
      spec = qs::sim::WorkloadSpec::parse(spec_line);
    } else {
      spec = qs::sim::WorkloadSpec::standard(seed, ticks);
      spec.scale_to_jobs(jobs);
    }

    const qs::StateVectorBackend backend;
    qs::obs::Journal journal;
    const qs::sim::ScenarioReport report =
        qs::sim::run_scenario(backend, spec, journal, options);

    std::cerr << "scenario: submitted=" << report.submitted
              << " completed=" << report.completed
              << " failed=" << report.failed
              << " cancelled=" << report.cancelled
              << " expired=" << report.expired
              << " recalibrations=" << report.recalibrations
              << " snapshots=" << report.snapshots
              << " epoch=" << report.final_epoch
              << " events=" << journal.size() << "\n";
    if (!report.accounted()) {
      std::cerr << "scenario: job accounting does not balance\n";
      return 2;
    }

    if (out_path.empty()) {
      journal.write(std::cout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
      }
      journal.write(out);
    }

    if (check || slo) {
      std::istringstream is(journal.str());
      const qs::obs::Journal::Parsed parsed = qs::obs::Journal::read(is);
      if (slo) std::cerr << qs::sim::format_slo(qs::sim::compute_slo(parsed));
      if (check) {
        const std::vector<std::string> violations =
            qs::sim::check_journal(parsed);
        if (!violations.empty()) {
          std::cerr << violations.size() << " invariant violation(s):\n";
          for (const std::string& v : violations)
            std::cerr << "  " << v << "\n";
          return 2;
        }
        std::cerr << "invariants: clean\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "scenario_runner: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
