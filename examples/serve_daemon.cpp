// Serve daemon: a mixed QAOA + QRC + SQED workload through the
// multi-tenant JobService (see docs/ARCHITECTURE.md "Serve layer").
//
// Three tenants -- the paper's three application studies -- submit
// concurrently from their own threads, with distinct priorities, onto one
// shared noisy trajectory backend. The service fair-shares the tenants,
// batches same-circuit bursts onto shared compiled plans, and stays
// bitwise deterministic: the whole run is replayed afterwards and every
// expectation value must match exactly.
//
// The first (verbose) run records the full span timeline of every job
// and writes it as Chrome trace_event JSON to TRACE_serve_daemon.json
// (load it in chrome://tracing or https://ui.perfetto.dev); CI's
// perf-smoke job archives that file as an artifact.
//
//   ./examples/example_serve_daemon
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/quditsim.h"

using namespace qs;

namespace {

NoiseModel device_noise() {
  NoiseParams p;
  p.depol_2q = 0.02;
  p.loss_per_gate = 0.01;
  return NoiseModel(p);
}

/// One tenant's job list (kept identical across replays).
std::vector<JobSpec> qaoa_jobs() {
  // Coloring QAOA on a 4-node graph, 3 colors: a gamma sweep where each
  // parameter point is submitted twice (shot halves) -- a same-circuit
  // burst the scheduler can batch onto one compiled plan.
  Rng rng(5);
  const Graph graph = random_graph(4, 0.7, rng);
  const ColoringQaoa qaoa(graph, 3);
  const std::vector<int> offsets(4, 0);
  std::vector<double> cost = qaoa.cost_diagonal(offsets);
  std::vector<JobSpec> jobs;
  for (double gamma : {0.4, 0.55, 0.7})
    for (int repeat = 0; repeat < 2; ++repeat)
      jobs.push_back(JobSpec(qaoa.build_circuit({gamma}, {0.35}, offsets))
                         .with_tenant("qaoa")
                         .with_priority(2)
                         .with_shots(192)
                         .with_observable("cost", cost));
  return jobs;
}

std::vector<JobSpec> qrc_jobs() {
  // Probe-style reservoir circuits on {2, 8} (transmon + cavity qudit):
  // an input-drive sweep reading out the cavity photon number.
  std::vector<JobSpec> jobs;
  for (double drive : {0.2, 0.5, 0.8, 1.1}) {
    Circuit c(QuditSpace({2, 8}));
    c.add("F", fourier(2), {0});
    c.add("D", displacement(8, cplx(drive, 0.15)), {1});
    c.add("CSUM", csum(2, 8), {0, 1});
    c.add("F8", fourier(8), {1});
    std::vector<double> photon_number(c.space().dimension());
    for (std::size_t i = 0; i < photon_number.size(); ++i)
      photon_number[i] = static_cast<double>(i % 8);
    jobs.push_back(JobSpec(std::move(c))
                       .with_tenant("qrc")
                       .with_priority(1)
                       .with_shots(128)
                       .with_observable("n_cavity", photon_number));
  }
  return jobs;
}

std::vector<JobSpec> sqed_jobs() {
  // Quench steps of a 3-rotor gauge chain (d = 3): Trotter depth sweep
  // recording the electric energy.
  GaugeModelParams params;
  params.d = 3;
  std::vector<JobSpec> jobs;
  for (int steps : {1, 2, 3}) {
    TrotterOptions opt;
    opt.dt = 0.25;
    opt.steps = steps;
    Circuit c = trotter_circuit(gauge_chain(3, params), opt);
    std::vector<double> electric = electric_energy_diagonal(c.space());
    jobs.push_back(JobSpec(std::move(c))
                       .with_tenant("sqed")
                       .with_priority(0)
                       .with_shots(128)
                       .with_observable("electric", electric));
  }
  return jobs;
}

/// Submits every tenant from its own thread and waits for all results.
/// Returns expectation values keyed by (tenant, job index).
std::map<std::string, std::vector<double>> run_workload(
    const Backend& backend, bool verbose, obs::Tracer* tracer = nullptr) {
  ServiceOptions options;
  options.workers = 4;
  options.max_batch = 8;
  options.tracer = tracer;
  JobService service(backend, options);

  std::vector<std::vector<JobSpec>> tenants;
  tenants.push_back(qaoa_jobs());
  tenants.push_back(qrc_jobs());
  tenants.push_back(sqed_jobs());

  std::vector<std::vector<JobHandle>> handles(tenants.size());
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < tenants.size(); ++t)
    submitters.emplace_back([&, t] {
      for (JobSpec& spec : tenants[t])
        handles[t].push_back(service.submit(std::move(spec)));
    });
  for (std::thread& s : submitters) s.join();

  std::map<std::string, std::vector<double>> expectations;
  const char* names[] = {"qaoa", "qrc", "sqed"};
  for (std::size_t t = 0; t < tenants.size(); ++t)
    for (const JobHandle& h : handles[t]) {
      const ExecutionResult r = h.result();  // waits; throws on failure
      expectations[names[t]].push_back(r.expectations.begin()->second);
    }

  if (verbose) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      std::printf("tenant %-5s:", names[t]);
      for (double e : expectations[names[t]]) std::printf("  %8.4f", e);
      std::printf("\n");
    }
    const ServiceTelemetry tl = service.telemetry();
    std::printf(
        "\ntelemetry: %zu submitted, %zu completed, %zu batches "
        "(mean %.2f jobs/batch, largest %zu)\n",
        tl.submitted, tl.completed, tl.batches, tl.mean_batch_size(),
        tl.largest_batch);
    std::printf(
        "plan cache: %zu compiles, %zu hits | queue wait total %.1f ms | "
        "%zu results stored\n",
        tl.plan_cache_misses, tl.plan_cache_hits,
        1e3 * tl.queue_seconds_total, tl.results_stored);
    // Ring overflow silently truncates job timelines; the service now
    // surfaces the tracer's drop counter as obs.trace.dropped_spans so
    // an operator sees the gap instead of trusting a partial trace.
    if (tl.trace_dropped_spans > 0)
      std::printf("WARNING: tracer dropped %llu span(s) "
                  "(obs.trace.dropped_spans) -- the exported timeline is "
                  "incomplete; raise TracerOptions::capacity_per_shard\n",
                  static_cast<unsigned long long>(tl.trace_dropped_spans));
    std::printf("\nper-tenant submit->finish latency (ms):\n");
    for (const char* tenant : names) {
      const TenantLatency lat = service.tenant_latency(tenant);
      std::printf("  %-5s n=%-3zu mean %7.2f  p50 %7.2f  p95 %7.2f  "
                  "p99 %7.2f\n",
                  tenant, static_cast<std::size_t>(lat.count),
                  1e3 * lat.mean, 1e3 * lat.p50, 1e3 * lat.p95,
                  1e3 * lat.p99);
    }
  }
  service.shutdown(ShutdownMode::kDrain);
  return expectations;
}

}  // namespace

int main() {
  const TrajectoryBackend device{device_noise()};

  std::printf("mixed 3-tenant workload on backend '%s'\n\n",
              device.name().c_str());

  // Trace the verbose run end to end: every job's
  // submit->queue->batch->...->store timeline lands in the ring.
  obs::TracerOptions tracer_options;
  tracer_options.shards = 4;
  tracer_options.capacity_per_shard = 16384;
  obs::Tracer tracer(tracer_options);
  const auto first = run_workload(device, true, &tracer);

  const char* trace_path = "TRACE_serve_daemon.json";
  {
    std::ofstream trace_file(trace_path);
    tracer.export_chrome_json(trace_file);
  }
  std::printf("\ntrace: %llu spans (%llu dropped) -> %s "
              "(chrome://tracing)\n",
              static_cast<unsigned long long>(tracer.recorded()),
              static_cast<unsigned long long>(tracer.dropped()), trace_path);

  // The determinism contract: replaying the same per-tenant submissions
  // -- new service, new thread interleavings, same tenant streams --
  // reproduces every expectation value bitwise.
  const auto replay = run_workload(device, false);
  std::size_t compared = 0;
  std::size_t mismatches = 0;
  for (const auto& [tenant, values] : first) {
    const auto& other = replay.at(tenant);
    for (std::size_t i = 0; i < values.size(); ++i, ++compared)
      if (values[i] != other[i]) ++mismatches;
  }
  std::printf("\nreplay check: %zu expectation values compared, "
              "%zu mismatches %s\n",
              compared, mismatches, mismatches == 0 ? "(bitwise equal)" : "");
  return mismatches == 0 ? 0 : 1;
}
