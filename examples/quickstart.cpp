// Quickstart: build a two-qutrit circuit, run it noiselessly and under a
// hardware-style noise model, and inspect the results.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/quditsim.h"

int main() {
  using namespace qs;

  // A register of two qutrits (d = 3 cavity qudits).
  Circuit circuit(QuditSpace::uniform(2, 3));
  circuit.add("F", fourier(3), {0});          // qutrit "Hadamard"
  circuit.add("CSUM", csum(3, 3), {0, 1});    // qudit CNOT generalization
  std::printf("%s\n", circuit.to_string().c_str());

  // Noiseless run: a maximally entangled qutrit pair.
  const StateVector psi = run_from_vacuum(circuit);
  std::printf("amplitudes of |kk>:\n");
  for (int k = 0; k < 3; ++k) {
    const std::size_t idx = circuit.space().index_of({k, k});
    const cplx a = psi.amplitude(idx);
    std::printf("  |%d%d>  %.4f%+.4fi\n", k, k, a.real(), a.imag());
  }

  // Sample measurement outcomes.
  Rng rng(7);
  const auto counts = psi.sample_counts(1000, rng);
  std::printf("1000 shots (noiseless):\n");
  for (std::size_t i = 0; i < counts.size(); ++i)
    if (counts[i] > 0) {
      const auto digits = circuit.space().digits(i);
      std::printf("  |%d%d> : %zu\n", digits[0], digits[1], counts[i]);
    }

  // The same circuit with photon loss and depolarizing noise.
  NoiseParams noise;
  noise.depol_2q = 0.03;
  noise.loss_per_gate = 0.02;
  DensityMatrix rho(circuit.space());
  run_noisy(circuit, rho, NoiseModel(noise));
  std::printf("noisy run: purity %.4f, fidelity to ideal %.4f\n",
              rho.purity(),
              density_pure_fidelity(rho.matrix(), psi.amplitudes()));
  return 0;
}
