// Quickstart: build a two-qutrit circuit and run it through the unified
// Backend/ExecutionSession API -- noiselessly, exactly under a
// hardware-style noise model, and as a batch of seeded trajectory
// forecasts.
//
// One level up from sessions sits the multi-tenant job service
// (src/serve/, docs/ARCHITECTURE.md "Serve layer"): many client threads
// submitting JobSpecs against one shared backend, with fair-share
// scheduling and plan-aware batching -- see examples/serve_daemon.cpp.
//
//   ./examples/example_quickstart
#include <cstdio>

#include "core/quditsim.h"

int main() {
  using namespace qs;

  // A register of two qutrits (d = 3 cavity qudits).
  Circuit circuit(QuditSpace::uniform(2, 3));
  circuit.add("F", fourier(3), {0});          // qutrit "Hadamard"
  circuit.add("CSUM", csum(3, 3), {0, 1});    // qudit CNOT generalization
  std::printf("%s\n", circuit.to_string().c_str());

  // Noiseless run on the state-vector backend: a maximally entangled
  // qutrit pair. Every backend answers the same ExecutionRequest shape.
  const StateVectorBackend ideal;
  const ExecutionResult pure =
      ideal.execute(ExecutionRequest(circuit).with_shots(1000).with_seed(7));
  std::printf("populations of |kk> (backend '%s'):\n", pure.backend.c_str());
  for (int k = 0; k < 3; ++k) {
    const std::size_t idx = circuit.space().index_of({k, k});
    std::printf("  |%d%d>  %.4f\n", k, k, pure.probabilities[idx]);
  }
  std::printf("1000 shots (noiseless):\n");
  for (std::size_t i = 0; i < pure.counts.size(); ++i)
    if (pure.counts[i] > 0) {
      const auto digits = circuit.space().digits(i);
      std::printf("  |%d%d> : %zu\n", digits[0], digits[1], pure.counts[i]);
    }

  // The same circuit with photon loss and depolarizing noise, exactly
  // (density-matrix backend). Observables ride along in the request.
  NoiseParams noise;
  noise.depol_2q = 0.03;
  noise.loss_per_gate = 0.02;
  std::vector<double> ghz_weight(circuit.space().dimension(), 0.0);
  for (int k = 0; k < 3; ++k) ghz_weight[circuit.space().index_of({k, k})] = 1.0;
  const DensityMatrixBackend exact{NoiseModel(noise)};
  const ExecutionResult noisy = exact.execute(
      ExecutionRequest(circuit).with_observable("ghz_weight", ghz_weight));
  std::printf("\nnoisy run (backend '%s'): GHZ-support weight %.4f\n",
              noisy.backend.c_str(), noisy.expectation("ghz_weight"));

  // Hardware-forecast flavor: a batch of seeded trajectory requests,
  // fanned out over a thread pool by the session. A fixed session seed
  // makes the whole batch reproducible regardless of thread count.
  const TrajectoryBackend forecast{NoiseModel(noise)};
  SessionOptions opts;
  opts.seed = 2026;
  ExecutionSession session(forecast, opts);
  std::vector<ExecutionRequest> batch;
  for (int i = 0; i < 4; ++i)
    batch.push_back(ExecutionRequest(circuit)
                        .with_shots(250)
                        .with_observable("ghz_weight", ghz_weight));
  const auto results = session.submit_batch(std::move(batch));
  std::printf("\ntrajectory batch (4 x 250 shots, seeded):\n");
  for (const ExecutionResult& r : results)
    std::printf("  seed %016llx : GHZ-support weight %.4f\n",
                static_cast<unsigned long long>(r.seed),
                r.expectation("ghz_weight"));
  std::printf("session totals: %zu requests, %.1f ms backend time\n",
              session.requests_executed(),
              1e3 * session.total_backend_seconds());
  return 0;
}
