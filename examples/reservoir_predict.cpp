// Quantum reservoir computing case study (paper SS II-C): two coupled
// dissipative cavity modes predict a NARMA-2 series; a classical echo
// state network provides the size comparison.
//
//   ./examples/reservoir_predict
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  Rng rng(5);

  const SeriesTask task = make_narma(2, 300, rng);

  ReservoirConfig cfg;
  cfg.modes = 2;
  cfg.levels = 6;
  cfg.kappa = 0.35;
  cfg.kerr = 0.6;
  cfg.input_gain = 1.0;
  cfg.rk4_steps_per_tau = 12;
  OscillatorReservoir reservoir(cfg);
  std::printf("quantum reservoir: %d modes x %d levels -> %zu neurons\n",
              cfg.modes, cfg.levels, reservoir.num_features());

  const RMatrix features = reservoir.run(task.input);
  const EvalResult qr = evaluate_readout(features, task.target, 30, 180,
                                         1e-5);
  std::printf("quantum reservoir NARMA-2 test NMSE: %.4f\n", qr.test_nmse);

  // Shot-noise reality check (E8): finite measurement budget.
  for (std::size_t shots : {64u, 512u, 4096u}) {
    Rng srng(77);
    const RMatrix noisy = reservoir.run_sampled(task.input, shots, srng);
    const EvalResult ev = evaluate_readout(noisy, task.target, 30, 180,
                                           1e-4);
    std::printf("  with %4zu shots/step: test NMSE %.4f\n", shots,
                ev.test_nmse);
  }

  // Classical ESN sweep: how many tanh neurons match the quantum NMSE?
  ConsoleTable table({"ESN neurons", "test NMSE"});
  for (int neurons : {4, 8, 16, 36, 64, 128}) {
    EsnConfig ecfg;
    ecfg.neurons = neurons;
    ecfg.input_scale = 0.5;
    Rng erng(42);
    EchoStateNetwork esn(ecfg, erng);
    const EvalResult ev =
        evaluate_readout(esn.run(task.input), task.target, 30, 180, 1e-5);
    table.add_row({fmt_int(neurons), fmt(ev.test_nmse, 4)});
  }
  table.print(std::cout);
  return 0;
}
