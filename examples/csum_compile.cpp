// CSUM synthesis (the paper's key engineering challenge): compile the
// qudit CSUM gate into native cavity operations (SNAP, displacement,
// cross-Kerr, beamsplitter) and report fidelity and duration for the
// co-located and adjacent-cavity variants.
//
//   ./examples/csum_compile [d]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/quditsim.h"

int main(int argc, char** argv) {
  using namespace qs;
  const int d = argc > 1 ? std::atoi(argv[1]) : 3;

  SnapSynthOptions opt;
  opt.layers = 2 * d;  // ansatz depth scales with dimension
  opt.max_layers = 2 * d + 4;
  opt.iters = 600;
  opt.restarts = 3;
  opt.target_fidelity = 0.995;
  const GateDurations durations;

  std::printf("compiling CSUM_%d...\n", d);
  const CsumPlan local = plan_csum(d, /*adjacent=*/false, opt, durations);
  const CsumPlan bridged = plan_csum(d, /*adjacent=*/true, opt, durations);

  ConsoleTable table({"variant", "unitary fidelity", "Fourier fidelity",
                      "native ops", "duration (us)"});
  table.add_row({"co-located", fmt(local.unitary_fidelity, 4),
                 fmt(local.fourier_fidelity, 4), fmt_int(local.native_ops),
                 fmt(local.duration * 1e6, 2)});
  table.add_row({"adjacent (bridged)", fmt(bridged.unitary_fidelity, 4),
                 fmt(bridged.fourier_fidelity, 4),
                 fmt_int(bridged.native_ops),
                 fmt(bridged.duration * 1e6, 2)});
  table.print(std::cout);

  // Hardware forecast: error accumulated over the plan on the paper's
  // forecast device.
  const Processor proc = Processor::forecast_device();
  std::printf("%s\n", proc.to_string().c_str());
  const double f_local =
      estimate_hardware_fidelity(local.circuit, proc, {0, 1});
  const double f_bridged =
      estimate_hardware_fidelity(bridged.circuit, proc, {3, 4, 2});
  std::printf("hardware fidelity (co-located): %.4f\n", f_local);
  std::printf("hardware fidelity (adjacent):   %.4f\n", f_bridged);
  std::printf("native gate listing (co-located):\n%s\n",
              local.circuit.to_string().c_str());
  return 0;
}
