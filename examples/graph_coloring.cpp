// Graph-coloring case study (paper SS II-B): qudit one-hot QAOA with the
// NDAR loop that exploits photon loss as a computational resource.
//
//   ./examples/graph_coloring
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;
  Rng rng(11);

  // A random 3-regular instance with 8 nodes, 3 colors.
  const Graph g = random_regular_graph(8, 3, rng);
  const int optimum = optimal_colored_edges(g, 3);
  std::printf("instance: %d nodes, %zu edges, optimum %d colored edges\n",
              g.n, g.num_edges(), optimum);

  const ColoringQaoa qaoa(g, 3);

  // Optimize p = 1 parameters on the noiseless simulator.
  const auto [gamma, beta] = qaoa.optimize_p1(10);
  std::printf("optimized p=1 parameters: gamma %.3f beta %.3f\n", gamma,
              beta);
  std::printf("expected cost at optimum params: %.3f (uniform %.3f)\n",
              qaoa.expected_cost({gamma}, {beta}),
              static_cast<double>(g.num_edges()) * (1.0 - 1.0 / 3.0));

  // Noisy execution: photon loss drives the register toward |0...0>.
  NoiseParams p;
  p.loss_per_gate = 0.15;
  const NoiseModel noise(p);

  NdarOptions vanilla;
  vanilla.rounds = 6;
  vanilla.shots = 96;
  vanilla.remap = false;
  NdarOptions ndar = vanilla;
  ndar.remap = true;

  Rng r1(21), r2(21);
  const NdarResult v = run_ndar(qaoa, gamma, beta, noise, vanilla, r1);
  const NdarResult n = run_ndar(qaoa, gamma, beta, noise, ndar, r2);

  ConsoleTable table({"round", "vanilla mean", "NDAR mean", "vanilla best",
                      "NDAR best"});
  for (std::size_t round = 0; round < v.mean_cost_per_round.size(); ++round)
    table.add_row({fmt_int(static_cast<long long>(round)),
                   fmt(v.mean_cost_per_round[round], 2),
                   fmt(n.mean_cost_per_round[round], 2),
                   fmt(v.best_cost_per_round[round], 0),
                   fmt(n.best_cost_per_round[round], 0)});
  table.print(std::cout);
  std::printf("NDAR best coloring cost: %d / %d\n", n.best_cost, optimum);
  return 0;
}
