// sQED case study (paper SS II-A): extract the mass gap of a truncated
// U(1) gauge chain from real-time quench dynamics, comparing the native
// qutrit encoding against the binary qubit encoding under gate noise.
//
//   ./examples/sqed_massgap
#include <cstdio>
#include <iostream>

#include "core/quditsim.h"

int main() {
  using namespace qs;

  const GaugeModelParams params{3, 1.0, 1.0};  // d = 3 qutrits
  const Hamiltonian h = gauge_chain(2, params);
  const double dt = 0.25;
  const int samples = 127;

  // Reference gap from exact diagonalization.
  const EigResult er = eigh(h.dense());
  std::printf("exact spectrum (lowest 4): %.4f %.4f %.4f %.4f\n",
              er.values[0], er.values[1], er.values[2], er.values[3]);

  // Native qutrit Trotter evolution.
  const Circuit step = native_trotter_circuit(h, {2, dt / 2, 2});
  const auto diag = electric_energy_diagonal(h.space());
  const auto series = quench_series(step, diag, {1, 1}, NoiseModel(), samples);
  const double freq = dominant_frequency(series, dt);
  std::printf("noiseless extracted frequency: %.4f\n", freq);

  // Noise scan: native qutrits vs binary qubits.
  auto noise_for = [](double scale) {
    NoiseParams p;
    p.depol_1q = 0.1 * scale;
    p.depol_2q = scale;
    return p;
  };
  const std::vector<double> scales{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};

  const ThresholdScan native = scan_noise_threshold(
      step, diag, {1, 1}, noise_for, scales, samples, dt, 0.1);
  const Circuit bstep =
      binary_trotter_circuit(encode_binary(h), {2, dt / 2, 2});
  const ThresholdScan binary = scan_noise_threshold(
      bstep, electric_energy_diagonal_binary(h.space()), {1, 0, 1, 0},
      noise_for, scales, samples, dt, 0.1);

  ConsoleTable table({"noise scale", "qutrit rel. err", "qubit rel. err"});
  for (std::size_t i = 0; i < scales.size(); ++i)
    table.add_row({fmt_sci(scales[i]),
                   fmt(native.points[i].relative_error, 4),
                   fmt(binary.points[i].relative_error, 4)});
  table.print(std::cout);
  std::printf("qutrit threshold %.2e, qubit threshold %.2e, ratio %.1fx\n",
              native.threshold, binary.threshold,
              native.threshold / binary.threshold);
  return 0;
}
